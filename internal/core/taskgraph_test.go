package core

import (
	"errors"
	"strings"
	"testing"

	"ctdvs/internal/ir"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// graphTaskProgram builds a small loop whose memory/compute mix differs with
// memFrac, so different tasks prefer different modes.
func graphTaskProgram(name string, trips, computeCycles int) *ir.Program {
	b := ir.NewBuilder(name)
	s := b.SequentialStream(32 << 10)
	body := b.Block("body")
	exit := b.Block("exit")
	body.Compute(computeCycles).Load(s).DependentCompute(20)
	b.LoopBranch(body, body, exit, trips)
	exit.Compute(5)
	exit.Exit()
	return b.MustFinish()
}

// testGraph builds a diamond with distinct per-task programs and collects all
// profiles on one machine.
func testGraph(t *testing.T) (*ir.TaskGraph, []*profile.Profile) {
	t.Helper()
	progs := []*ir.Program{
		graphTaskProgram("g-src", 300, 60),
		graphTaskProgram("g-left", 800, 120),
		graphTaskProgram("g-right", 500, 40),
		graphTaskProgram("g-sink", 300, 80),
	}
	g := &ir.TaskGraph{Name: "test-diamond", Edges: [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}}
	m := sim.MustNew(sim.DefaultConfig())
	profiles := make([]*profile.Profile, len(progs))
	for i, p := range progs {
		in := ir.Input{Name: "in", Seed: int64(10 + i)}
		g.Tasks = append(g.Tasks, &ir.Task{Name: p.Name, Program: p, Input: in})
		pr, err := profile.Collect(m, p, in, volt.XScale3())
		if err != nil {
			t.Fatal(err)
		}
		profiles[i] = pr
	}
	return g, profiles
}

// graphSpan returns the all-fastest and all-slowest makespans of the placed
// graph — the span deadlines are positioned in.
func graphSpan(t *testing.T, g *ir.TaskGraph, profiles []*profile.Profile, cores int) (lo, hi float64) {
	t.Helper()
	nm := profiles[0].Modes.Len()
	span := func(mode int) float64 {
		dur := make([]float64, len(g.Tasks))
		energy := make([]float64, len(g.Tasks))
		for i, pr := range profiles {
			dur[i] = pr.TotalTimeUS[mode]
			energy[i] = pr.TotalEnergyUJ[mode]
		}
		fast := make([]float64, len(g.Tasks))
		for i, pr := range profiles {
			fast[i] = pr.TotalTimeUS[nm-1]
		}
		assign, order := ListPlacement(g, fast, cores)
		sched := &sim.GraphSchedule{
			Modes:     profiles[0].Modes,
			Regulator: volt.DefaultRegulator(),
			Cores:     cores,
			Placement: make([]sim.TaskPlacement, len(g.Tasks)),
			Order:     order,
		}
		for i := range g.Tasks {
			sched.Placement[i] = sim.TaskPlacement{Core: assign[i], Mode: mode}
		}
		plan, err := sim.PlanGraph(g, sched, dur, energy)
		if err != nil {
			t.Fatal(err)
		}
		return plan.MakespanUS
	}
	return span(nm - 1), span(0)
}

func TestOptimizeGraphMeetsDeadlineAndSavesEnergy(t *testing.T) {
	t.Parallel()
	g, profiles := testGraph(t)
	const cores = 2
	lo, hi := graphSpan(t, g, profiles, cores)
	if lo >= hi {
		t.Fatalf("degenerate span [%v, %v]", lo, hi)
	}
	dl := lo + 0.5*(hi-lo)
	res, err := OptimizeGraph(g, profiles, cores, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degenerate {
		t.Fatal("multi-task graph reported degenerate")
	}
	if res.PredictedMakespanUS > dl*(1+1e-9) {
		t.Errorf("predicted makespan %v overshoots deadline %v", res.PredictedMakespanUS, dl)
	}
	// Energy must beat running everything at the fastest mode (which has
	// maximal energy and is feasible by construction of the deadline).
	nm := profiles[0].Modes.Len()
	fastE := 0.0
	for _, pr := range profiles {
		fastE += pr.TotalEnergyUJ[nm-1]
	}
	if res.PredictedEnergyUJ >= fastE {
		t.Errorf("graph DVS energy %v does not beat all-fastest %v", res.PredictedEnergyUJ, fastE)
	}
	// The prediction is exact: simulating the schedule reproduces it.
	meas, err := sim.SimulateGraph(sim.SinglePool{M: sim.MustNew(sim.DefaultConfig())}, g, res.Schedule, 1)
	if err != nil {
		t.Fatal(err)
	}
	if meas.EnergyUJ != res.PredictedEnergyUJ || meas.MakespanUS != res.PredictedMakespanUS {
		t.Errorf("measured (%.6f µJ, %.6f µs) != predicted (%.6f µJ, %.6f µs)",
			meas.EnergyUJ, meas.MakespanUS, res.PredictedEnergyUJ, res.PredictedMakespanUS)
	}
}

func TestOptimizeGraphLaxDeadlineSlowsDown(t *testing.T) {
	t.Parallel()
	g, profiles := testGraph(t)
	const cores = 2
	lo, hi := graphSpan(t, g, profiles, cores)
	tight, err := OptimizeGraph(g, profiles, cores, lo+0.2*(hi-lo), nil)
	if err != nil {
		t.Fatal(err)
	}
	lax, err := OptimizeGraph(g, profiles, cores, hi+0.5*(hi-lo), nil)
	if err != nil {
		t.Fatal(err)
	}
	if lax.PredictedEnergyUJ > tight.PredictedEnergyUJ {
		t.Errorf("lax deadline energy %v exceeds tight %v", lax.PredictedEnergyUJ, tight.PredictedEnergyUJ)
	}
	// With the deadline beyond the all-slowest makespan, everything runs at
	// the slowest mode.
	for ti, pl := range lax.Schedule.Placement {
		if pl.Mode != 0 {
			t.Errorf("task %d at mode %d under unconstrained deadline", ti, pl.Mode)
		}
	}
}

func TestOptimizeGraphInfeasible(t *testing.T) {
	t.Parallel()
	g, profiles := testGraph(t)
	lo, _ := graphSpan(t, g, profiles, 2)
	_, err := OptimizeGraph(g, profiles, 2, lo*0.5, nil)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("impossible deadline: got %v, want ErrInfeasible", err)
	}
}

func TestOptimizeGraphDegenerateBitIdentical(t *testing.T) {
	t.Parallel()
	m, pr := collectTwoPhase(t)
	dl := midDeadline(pr)
	single, err := OptimizeSingle(pr, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := ir.SingleTaskGraph(pr.Program, pr.Input)
	graph, err := OptimizeGraph(g, []*profile.Profile{pr}, 1, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Degenerate {
		t.Fatal("1-task/1-core graph not marked degenerate")
	}
	if graph.PredictedEnergyUJ != single.PredictedEnergyUJ {
		t.Errorf("degenerate energy %v != single-program %v", graph.PredictedEnergyUJ, single.PredictedEnergyUJ)
	}
	if graph.Solver.Objective != single.Solver.Objective {
		t.Errorf("degenerate objective %v != single-program %v", graph.Solver.Objective, single.Solver.Objective)
	}
	// The intra-task schedule is the single-program schedule: same
	// assignment map contents, and executing the graph is bit-identical to
	// executing the single-program schedule.
	intra := graph.Schedule.Intra[0]
	if len(intra.Assignment) != len(single.Schedule.Assignment) || intra.Initial != single.Schedule.Initial {
		t.Fatalf("degenerate intra schedule differs from single-program schedule")
	}
	for e, mi := range single.Schedule.Assignment {
		if intra.Assignment[e] != mi {
			t.Fatalf("edge %v: intra mode %d != single %d", e, intra.Assignment[e], mi)
		}
	}
	direct, err := m.RunDVS(pr.Program, pr.Input, single.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	viaGraph, err := sim.SimulateGraph(sim.SinglePool{M: m}, g, graph.Schedule, 1)
	if err != nil {
		t.Fatal(err)
	}
	if viaGraph.EnergyUJ != direct.EnergyUJ || viaGraph.MakespanUS != direct.TimeUS {
		t.Errorf("graph execution (%.6f µJ, %.6f µs) != single-program (%.6f µJ, %.6f µs)",
			viaGraph.EnergyUJ, viaGraph.MakespanUS, direct.EnergyUJ, direct.TimeUS)
	}
}

func TestOptimizeGraphValidation(t *testing.T) {
	t.Parallel()
	g, profiles := testGraph(t)
	if _, err := OptimizeGraph(g, profiles[:2], 2, 1000, nil); err == nil || !strings.Contains(err.Error(), "profiles") {
		t.Errorf("mismatched profile count accepted: %v", err)
	}
	if _, err := OptimizeGraph(g, profiles, 0, 1000, nil); err == nil || !strings.Contains(err.Error(), "cores") {
		t.Errorf("zero cores accepted: %v", err)
	}
	if _, err := OptimizeGraph(g, profiles, 2, -1, nil); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Errorf("negative deadline accepted: %v", err)
	}
	swapped := append([]*profile.Profile(nil), profiles...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := OptimizeGraph(g, swapped, 2, 1000, nil); err == nil || !strings.Contains(err.Error(), "program") {
		t.Errorf("profile/task program mismatch accepted: %v", err)
	}
}

func TestListPlacementDeterministicAndConsistent(t *testing.T) {
	t.Parallel()
	g, profiles := testGraph(t)
	nm := profiles[0].Modes.Len()
	dur := make([]float64, len(g.Tasks))
	for i, pr := range profiles {
		dur[i] = pr.TotalTimeUS[nm-1]
	}
	assign1, order1 := ListPlacement(g, dur, 2)
	assign2, order2 := ListPlacement(g, dur, 2)
	for i := range assign1 {
		if assign1[i] != assign2[i] {
			t.Fatalf("placement not deterministic: %v vs %v", assign1, assign2)
		}
	}
	for c := range order1 {
		if len(order1[c]) != len(order2[c]) {
			t.Fatalf("order not deterministic: %v vs %v", order1, order2)
		}
		for i := range order1[c] {
			if order1[c][i] != order2[c][i] {
				t.Fatalf("order not deterministic: %v vs %v", order1, order2)
			}
		}
	}
	// Precedence consistency: position of u before v for every same-core edge.
	pos := make(map[int]int)
	for c := range order1 {
		for i, task := range order1[c] {
			pos[task] = c*1000 + i
		}
	}
	for _, e := range g.Edges {
		if assign1[e[0]] == assign1[e[1]] && pos[e[0]] > pos[e[1]] {
			t.Errorf("edge %v contradicted by core order %v", e, order1)
		}
	}
}
