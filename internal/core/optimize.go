// Package core implements the paper's primary contribution: a profile-driven
// mixed-integer linear program that chooses compile-time DVS mode settings on
// control-flow-graph edges so program energy is minimized subject to a
// deadline (paper Sections 4 and 5).
//
// The formulation extends Saputra et al.'s loop-nest ILP with:
//
//   - mode-transition energy and time costs (Burd–Brodersen regulator model),
//     linearized with the paper's absolute-value trick;
//   - edge-grained control: a mode decision per control-flow edge, so a block
//     may run at different settings depending on its entry path;
//   - multiple input-data categories: the objective is the weighted average
//     energy over categories, with a deadline constraint per category;
//   - the 2 %-energy-tail edge filtering of Section 5.2, which collapses
//     cold edges onto their source block's hottest incoming edge and brings
//     MILP solve times from hours to seconds at essentially no energy cost.
//
// Decision variables are binary k_ijm ("edge (i,j) sets mode m", one per
// independent edge group and mode, with Σ_m k_ijm = 1) plus continuous
// e/t variables bounding |V²| and |V| differences across local paths
// (h → i → j). See DESIGN.md for the experiment index this package drives.
package core

import (
	"errors"
	"math"
	"sort"

	"ctdvs/internal/cfg"
	"ctdvs/internal/lp"
	"ctdvs/internal/milp"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// Category couples one input-data category's profile with its weight
// (the paper's p_g, the probability of seeing inputs of this category) and
// its deadline.
type Category struct {
	Profile    *profile.Profile
	Weight     float64
	DeadlineUS float64
}

// Options tunes the optimizer. The zero value uses the paper's defaults:
// transition costs on, 2 % filtering, the default regulator.
type Options struct {
	// Regulator prices transitions; zero value selects volt.DefaultRegulator.
	Regulator volt.Regulator
	// FilterTail is the cumulative-energy fraction below which edges lose
	// independent mode variables. Negative disables filtering; 0 selects the
	// paper's 0.02.
	FilterTail float64
	// NoTransitionCosts drops the e/t terms from the formulation (Saputra
	// et al.'s model); the simulator still charges real transition costs
	// when the resulting schedule runs. Ablation only.
	NoTransitionCosts bool
	// BlockBased collapses each block's incoming edges to one decision,
	// reducing the formulation to block (region) granularity. Ablation only.
	BlockBased bool
	// KeepIndependent, when non-nil, replaces tail filtering with an
	// explicit policy: exactly these edges (plus the virtual entry edge and
	// any aliasing-chain roots) keep independent mode variables; all other
	// edges follow their source block's hottest incoming edge. Package exp
	// derives keep-sets from Ball–Larus hot-path coverage.
	KeepIndependent map[cfg.Edge]bool
	// MILP tunes the branch-and-bound search.
	MILP *milp.Options
}

// Result is the outcome of an optimization.
type Result struct {
	// Schedule is the mode-set placement to execute (nil if infeasible).
	Schedule *sim.Schedule
	// PredictedEnergyUJ is the objective value: weighted average program
	// energy including predicted transition energies.
	PredictedEnergyUJ float64
	// PredictedTimeUS is the predicted execution time per category,
	// including predicted transition times.
	PredictedTimeUS []float64
	// IndependentEdges is the number of edge groups with their own mode
	// variables (equals TotalEdges when filtering is off).
	IndependentEdges int
	// TotalEdges is the number of control-flow edges (incl. virtual entry).
	TotalEdges int
	// Solver reports branch-and-bound statistics.
	Solver *milp.Result
}

// ErrInfeasible reports that no mode assignment meets the deadline(s).
var ErrInfeasible = errors.New("core: no schedule meets the deadline")

// Optimize builds and solves the MILP for the given categories and returns
// the optimal compile-time DVS schedule. It is the one-call composition of
// the staged API in stages.go: Prepare → Filter → Formulate → Solve.
func Optimize(cats []Category, opts *Options) (*Result, error) {
	prep, err := Prepare(cats, opts)
	if err != nil {
		return nil, err
	}
	return prep.Formulate(prep.Filter()).Solve()
}

// OptimizeSingle is Optimize for the common single-profile case.
func OptimizeSingle(pr *profile.Profile, deadlineUS float64, opts *Options) (*Result, error) {
	return Optimize([]Category{{Profile: pr, Weight: 1, DeadlineUS: deadlineUS}}, opts)
}

// formulation carries the variable layout of one MILP build.
type formulation struct {
	problem *milp.Problem
	modes   *volt.ModeSet
	graph   *cfg.Graph
	uf      *unionFind

	// kvar[root] = first variable index of that group's mode binaries
	// (modes.Len() consecutive variables).
	kvar map[int]int
	// evar/tvar per unordered group pair.
	evar map[[2]int]int
	tvar map[[2]int]int
	// pathD[pair][cat] aggregates D_hij per category for that group pair.
	pathD map[[2]int][]float64

	energyScale float64 // objective was divided by this
	timeScale   []float64

	// bounder evaluates the analytic dual bound for branch-and-bound node
	// boxes (see analytic_bound.go); Solve wires it into milp.Options.
	bounder *analyticBounder
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func buildFormulation(cats []Category, modes *volt.ModeSet, uf *unionFind, o Options) *formulation {
	g := cats[0].Profile.Graph
	nm := modes.Len()
	f := &formulation{
		problem: &milp.Problem{LP: lp.NewProblem()},
		modes:   modes,
		graph:   g,
		uf:      uf,
		kvar:    make(map[int]int),
		evar:    make(map[[2]int]int),
		tvar:    make(map[[2]int]int),
		pathD:   make(map[[2]int][]float64),
	}
	p := f.problem.LP

	// Aggregate weighted edge energies and per-category edge times per group.
	// groupE[root][m] — objective coefficients; groupT[cat][root][m].
	groupE := make(map[int][]float64)
	groupT := make([]map[int][]float64, len(cats))
	for ci := range cats {
		groupT[ci] = make(map[int][]float64)
	}
	for e := 0; e < g.NumEdges(); e++ {
		root := uf.find(e)
		dst := g.Edges[e].To
		if groupE[root] == nil {
			groupE[root] = make([]float64, nm)
		}
		for ci, c := range cats {
			gcount := float64(c.Profile.EdgeCounts[e])
			if gcount == 0 {
				continue
			}
			if groupT[ci][root] == nil {
				groupT[ci][root] = make([]float64, nm)
			}
			for m := 0; m < nm; m++ {
				groupE[root][m] += c.Weight * gcount * c.Profile.EnergyUJ[dst][m]
				groupT[ci][root][m] += gcount * c.Profile.TimeUS[dst][m]
			}
		}
	}

	// Scaling for conditioning: energies by the weighted fastest-mode
	// program energy, times by each category's deadline.
	f.energyScale = 0
	for _, c := range cats {
		f.energyScale += c.Weight * c.Profile.TotalEnergyUJ[nm-1]
	}
	if f.energyScale <= 0 {
		f.energyScale = 1
	}
	f.timeScale = make([]float64, len(cats))
	for ci, c := range cats {
		f.timeScale[ci] = c.DeadlineUS
	}

	// Mode binaries per group, with SOS1 rows.
	var sos [][]int
	var ints []int
	for e := 0; e < g.NumEdges(); e++ {
		root := uf.find(e)
		if _, ok := f.kvar[root]; !ok {
			base := -1
			row := make([]lp.Term, nm)
			group := make([]int, nm)
			for m := 0; m < nm; m++ {
				v := p.AddVariable(groupE[root][m]/f.energyScale, 0, 1)
				if m == 0 {
					base = v
				}
				row[m] = lp.Term{Var: v, Coef: 1}
				group[m] = v
				ints = append(ints, v)
			}
			p.MustAddConstraint(row, lp.EQ, 1)
			f.kvar[root] = base
			sos = append(sos, group)
		}
	}
	f.problem.Integers = ints
	f.problem.SOS1 = sos

	// Transition variables per unordered group pair with any path traffic.
	vmax, vmin := modes.Max().V, modes.Min().V
	eHi := vmax*vmax - vmin*vmin
	tHi := vmax - vmin
	for pi, path := range g.Paths {
		gin := uf.find(g.EdgeID(path.InEdge()))
		gout := uf.find(g.EdgeID(path.OutEdge()))
		if gin == gout {
			continue
		}
		// Paths never traversed in any category contribute nothing to
		// energy or time; give them no transition variables.
		traversed := false
		for _, c := range cats {
			if c.Profile.PathCounts[pi] > 0 {
				traversed = true
				break
			}
		}
		if !traversed {
			continue
		}
		key := pairKey(gin, gout)
		if f.pathD[key] == nil {
			f.pathD[key] = make([]float64, len(cats))
		}
		for ci, c := range cats {
			f.pathD[key][ci] += float64(c.Profile.PathCounts[pi])
		}
		if o.NoTransitionCosts {
			continue
		}
		if _, ok := f.evar[key]; !ok {
			ev := p.AddVariable(0, 0, eHi) // objective set below
			tv := p.AddVariable(0, 0, tHi)
			f.evar[key] = ev
			f.tvar[key] = tv
			// |Σ_m k_am·Vm² − Σ_m k_bm·Vm²| ≤ e, same with Vm for t.
			addAbs(p, f.kvar[key[0]], f.kvar[key[1]], nm, func(m int) float64 {
				vm := modes.Mode(m).V
				return vm * vm
			}, ev)
			addAbs(p, f.kvar[key[0]], f.kvar[key[1]], nm, func(m int) float64 {
				return modes.Mode(m).V
			}, tv)
		}
	}

	// Transition objective coefficients: CE · Σ_g p_g · D (skipped entirely
	// in the no-transition-cost ablation).
	if !o.NoTransitionCosts {
		ce := o.Regulator.CE()
		for key, ev := range f.evar {
			wd := 0.0
			for ci, c := range cats {
				wd += c.Weight * f.pathD[key][ci]
			}
			p.SetObjective(ev, ce*wd/f.energyScale)
		}
	}

	// Deadline constraint per category.
	ct := o.Regulator.CT()
	for ci, c := range cats {
		var terms []lp.Term
		for root, times := range groupT[ci] {
			base := f.kvar[root]
			for m := 0; m < nm; m++ {
				if times[m] != 0 {
					terms = append(terms, lp.Term{Var: base + m, Coef: times[m] / f.timeScale[ci]})
				}
			}
		}
		if !o.NoTransitionCosts {
			for key, tv := range f.tvar {
				if d := f.pathD[key][ci]; d > 0 {
					terms = append(terms, lp.Term{Var: tv, Coef: ct * d / f.timeScale[ci]})
				}
			}
		}
		p.MustAddConstraint(terms, lp.LE, c.DeadlineUS/f.timeScale[ci])
	}

	// Analytic dual bound data: the same coefficients the LP rows carry,
	// laid out densely. Mode binaries are the first G·nm variables in group
	// creation order, so group g's block starts at variable g·nm and the
	// dense index of a union-find root is kvar[root]/nm.
	numGroups := len(f.kvar)
	be := make([][]float64, numGroups)
	for root, base := range f.kvar {
		em := make([]float64, nm)
		for m := 0; m < nm; m++ {
			em[m] = groupE[root][m] / f.energyScale
		}
		be[base/nm] = em
	}
	vsq := make([]float64, nm)
	for m := 0; m < nm; m++ {
		v := modes.Mode(m).V
		vsq[m] = v * v
	}
	specs := make([]abCatSpec, len(cats))
	for ci, c := range cats {
		bt := make([][]float64, numGroups)
		for root, times := range groupT[ci] {
			tm := make([]float64, nm)
			for m := 0; m < nm; m++ {
				tm[m] = times[m] / f.timeScale[ci]
			}
			bt[f.kvar[root]/nm] = tm
		}
		specs[ci] = abCatSpec{budget: c.DeadlineUS / f.timeScale[ci], t: bt}
	}
	var pairs []abPair
	if !o.NoTransitionCosts {
		ce := o.Regulator.CE()
		for key := range f.evar {
			wd := 0.0
			for ci, c := range cats {
				wd += c.Weight * f.pathD[key][ci]
			}
			pairs = append(pairs, abPair{
				a: f.kvar[key[0]] / nm,
				b: f.kvar[key[1]] / nm,
				w: ce * wd / f.energyScale,
			})
		}
		// evar is a map; fix the order so the bound's floating-point sums
		// are bit-identical run to run.
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].a != pairs[j].a {
				return pairs[i].a < pairs[j].a
			}
			return pairs[i].b < pairs[j].b
		})
	}
	f.bounder = newAnalyticBounder(nm, be, vsq, specs, pairs, false)

	return f
}

// addAbs emits the two rows −e ≤ Σ_m w(m)(k_am − k_bm) ≤ e.
func addAbs(p *lp.Problem, baseA, baseB, nm int, w func(int) float64, e int) {
	terms := make([]lp.Term, 0, 2*nm+1)
	for m := 0; m < nm; m++ {
		terms = append(terms,
			lp.Term{Var: baseA + m, Coef: w(m)},
			lp.Term{Var: baseB + m, Coef: -w(m)})
	}
	upper := append(append([]lp.Term(nil), terms...), lp.Term{Var: e, Coef: -1})
	p.MustAddConstraint(upper, lp.LE, 0)
	lower := append(terms, lp.Term{Var: e, Coef: 1})
	p.MustAddConstraint(lower, lp.GE, 0)
}

// extract converts a solver incumbent into a Schedule and predictions.
func (f *formulation) extract(res *milp.Result, cats []Category, o Options) (*Result, error) {
	g := f.graph
	nm := f.modes.Len()
	assign := make(map[cfg.Edge]int, g.NumEdges())
	groupMode := make(map[int]int)
	for root, base := range f.kvar {
		best, bestV := 0, -1.0
		for m := 0; m < nm; m++ {
			if v := res.X[base+m]; v > bestV {
				best, bestV = m, v
			}
		}
		groupMode[root] = best
	}
	for e := 0; e < g.NumEdges(); e++ {
		assign[g.Edges[e]] = groupMode[f.uf.find(e)]
	}
	entryMode := assign[cfg.Edge{From: cfg.Entry, To: 0}]

	out := &Result{
		Schedule: &sim.Schedule{
			Modes:      f.modes,
			Assignment: assign,
			Initial:    entryMode,
			Regulator:  o.Regulator,
		},
		PredictedEnergyUJ: res.Objective * f.energyScale,
		PredictedTimeUS:   make([]float64, len(cats)),
		IndependentEdges:  f.uf.groups(),
		TotalEdges:        g.NumEdges(),
		Solver:            res,
	}

	// Predicted per-category times: recompute from the incumbent.
	ct := o.Regulator.CT()
	for ci, c := range cats {
		t := 0.0
		for e := 0; e < g.NumEdges(); e++ {
			dst := g.Edges[e].To
			m := groupMode[f.uf.find(e)]
			t += float64(c.Profile.EdgeCounts[e]) * c.Profile.TimeUS[dst][m]
		}
		for key, d := range f.pathD {
			if d[ci] == 0 {
				continue
			}
			va := f.modes.Mode(groupMode[key[0]]).V
			vb := f.modes.Mode(groupMode[key[1]]).V
			t += ct * d[ci] * math.Abs(va-vb)
		}
		out.PredictedTimeUS[ci] = t
	}
	return out, nil
}
