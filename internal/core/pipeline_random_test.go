package core

import (
	"math"
	"testing"

	"ctdvs/internal/cfg"
	"ctdvs/internal/paths"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
	"ctdvs/internal/workloads"
)

// TestPipelineOnRandomPrograms runs the full pipeline — generate, profile,
// optimize, place, execute, path-profile — over a family of random synthetic
// programs and checks cross-cutting invariants that no single package test
// can see:
//
//  1. profiled flow conservation (edge counts in = out = invocations);
//  2. the optimized schedule meets its deadline when executed;
//  3. optimized measured energy ≤ best-single-mode measured energy;
//  4. MILP-predicted energy/time agree with the simulator within 5 %;
//  5. stripping silent mode-sets changes nothing at run time;
//  6. Ball–Larus path counts are consistent with back-edge traversals.
func TestPipelineOnRandomPrograms(t *testing.T) {
	t.Parallel()
	m := sim.MustNew(sim.DefaultConfig())
	ms := volt.XScale3()
	reg := volt.DefaultRegulator()

	for seed := int64(1); seed <= 8; seed++ {
		spec, err := workloads.Synthetic(workloads.SyntheticConfig{
			Regions:         2 + int(seed%3),
			BlocksPerRegion: 1 + int(seed%4),
			TripsPerRegion:  25,
			Seed:            seed * 97,
		})
		if err != nil {
			t.Fatal(err)
		}
		pr, err := profile.Collect(m, spec.Program, spec.Inputs[0], ms)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := pr.Graph

		// (1) Flow conservation.
		for j := 0; j < g.NumBlocks; j++ {
			in := int64(0)
			for _, h := range g.Preds(j) {
				in += pr.EdgeCounts[g.EdgeID(cfg.Edge{From: h, To: j})]
			}
			if in != pr.Invocations[j] {
				t.Fatalf("seed %d: block %d flow violated: in %d != inv %d",
					seed, j, in, pr.Invocations[j])
			}
		}

		n := ms.Len()
		dl := pr.TotalTimeUS[n-1] + 0.4*(pr.TotalTimeUS[0]-pr.TotalTimeUS[n-1])
		res, err := OptimizeSingle(pr, dl, &Options{Regulator: reg})
		if err != nil {
			t.Fatalf("seed %d: optimize: %v", seed, err)
		}

		// (2) Deadline met on execution.
		run, err := m.RunDVS(spec.Program, spec.Inputs[0], res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		if run.TimeUS > dl*1.02 {
			t.Errorf("seed %d: measured %v µs misses deadline %v µs", seed, run.TimeUS, dl)
		}

		// (3) Never worse than the best single mode.
		mode, _, ok := pr.BestSingleMode(dl)
		if !ok {
			t.Fatalf("seed %d: no single mode", seed)
		}
		single, err := m.RunDVS(spec.Program, spec.Inputs[0], SingleModeSchedule(pr, mode, reg))
		if err != nil {
			t.Fatal(err)
		}
		if run.EnergyUJ > single.EnergyUJ*1.005 {
			t.Errorf("seed %d: DVS energy %v above single-mode %v",
				seed, run.EnergyUJ, single.EnergyUJ)
		}

		// (4) Predictions track measurements.
		if math.Abs(res.PredictedEnergyUJ-run.EnergyUJ) > 0.05*run.EnergyUJ {
			t.Errorf("seed %d: predicted energy %v vs measured %v",
				seed, res.PredictedEnergyUJ, run.EnergyUJ)
		}
		if math.Abs(res.PredictedTimeUS[0]-run.TimeUS) > 0.05*run.TimeUS {
			t.Errorf("seed %d: predicted time %v vs measured %v",
				seed, res.PredictedTimeUS[0], run.TimeUS)
		}

		// (5) Placement strip is behaviour-preserving.
		pl := PlaceModeSets(pr, res.Schedule)
		lean, err := m.RunDVS(spec.Program, spec.Inputs[0], pl.Strip(res.Schedule))
		if err != nil {
			t.Fatal(err)
		}
		if lean.EnergyUJ != run.EnergyUJ || lean.TimeUS != run.TimeUS ||
			lean.Transitions != run.Transitions {
			t.Errorf("seed %d: strip changed behaviour", seed)
		}

		// (6) Path profile consistency.
		numbering, err := paths.New(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tracer := numbering.NewTracer()
		m.EdgeHook = tracer.Edge
		traced, err := m.Run(spec.Program, spec.Inputs[0], ms.Mode(n-1))
		m.EdgeHook = nil
		if err != nil {
			t.Fatal(err)
		}
		tracer.Finish()
		tracedEdges, _, err := traced.CountMaps(spec.Program)
		if err != nil {
			t.Fatal(err)
		}
		back := int64(0)
		for e, c := range tracedEdges {
			if e.From != cfg.Entry && numbering.IsBackEdge(e) {
				back += c
			}
		}
		total := int64(0)
		for _, c := range tracer.Counts() {
			total += c
		}
		if total != back+1 {
			t.Errorf("seed %d: path count %d != back traversals %d + 1", seed, total, back)
		}
	}
}
