package core

import (
	"math"
	"testing"

	"ctdvs/internal/cfg"
	"ctdvs/internal/volt"
)

func TestPlacementClassification(t *testing.T) {
	t.Parallel()
	m, pr := collectTwoPhase(t)
	dl := midDeadline(pr)
	res, err := OptimizeSingle(pr, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl := PlaceModeSets(pr, res.Schedule)

	// Every assigned edge is classified exactly once.
	classified := map[cfg.Edge]int{}
	for _, e := range pl.Required {
		classified[e]++
	}
	for _, e := range pl.Silent {
		classified[e]++
	}
	if len(classified) != len(res.Schedule.Assignment) {
		t.Errorf("classified %d edges, schedule has %d", len(classified), len(res.Schedule.Assignment))
	}
	for e, n := range classified {
		if n != 1 {
			t.Errorf("edge %v classified %d times", e, n)
		}
	}
	// Hoistable ⊆ Required.
	req := map[cfg.Edge]bool{}
	for _, e := range pl.Required {
		req[e] = true
	}
	for _, e := range pl.Hoistable {
		if !req[e] {
			t.Errorf("hoistable edge %v not in required set", e)
		}
	}
	if pl.StaticModeSets() != len(pl.Required) {
		t.Error("StaticModeSets mismatch")
	}
	// Some instructions must be removable: a loop's back edge repeats its
	// own mode, so at most a handful of edges genuinely switch.
	if len(pl.Silent) == 0 {
		t.Error("expected at least one silent mode-set (loop back edges repeat modes)")
	}

	// The stripped schedule must behave identically on the profiled input.
	stripped := pl.Strip(res.Schedule)
	full, err := m.RunDVS(pr.Program, pr.Input, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	lean, err := m.RunDVS(pr.Program, pr.Input, stripped)
	if err != nil {
		t.Fatal(err)
	}
	if full.Transitions != lean.Transitions {
		t.Errorf("transitions changed after strip: %d vs %d", full.Transitions, lean.Transitions)
	}
	if math.Abs(full.EnergyUJ-lean.EnergyUJ) > 1e-9 || math.Abs(full.TimeUS-lean.TimeUS) > 1e-9 {
		t.Errorf("behaviour changed after strip: %v/%v vs %v/%v",
			full.TimeUS, full.EnergyUJ, lean.TimeUS, lean.EnergyUJ)
	}
	if len(stripped.Assignment) >= len(res.Schedule.Assignment) {
		t.Errorf("strip removed nothing: %d vs %d", len(stripped.Assignment), len(res.Schedule.Assignment))
	}
}

func TestPlacementSingleModeAllSilentButEntry(t *testing.T) {
	t.Parallel()
	_, pr := collectTwoPhase(t)
	sched := SingleModeSchedule(pr, 1, volt.DefaultRegulator())
	// Initial mode equals the single mode, so even the entry edge is silent.
	pl := PlaceModeSets(pr, sched)
	if len(pl.Required) != 0 {
		t.Errorf("single-mode schedule requires %d instructions: %v", len(pl.Required), pl.Required)
	}
	if len(pl.Silent) != len(sched.Assignment) {
		t.Errorf("silent = %d, want %d", len(pl.Silent), len(sched.Assignment))
	}
}

func TestProfiledTransitionsMatchesSimulator(t *testing.T) {
	t.Parallel()
	m, pr := collectTwoPhase(t)
	dl := midDeadline(pr)
	res, err := OptimizeSingle(pr, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of per-edge profiled transition counts must equal the simulator's
	// dynamic transition count.
	var predicted int64
	for e := range res.Schedule.Assignment {
		predicted += profiledTransitions(pr, res.Schedule, e)
	}
	run, err := m.RunDVS(pr.Program, pr.Input, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if predicted != run.Transitions {
		t.Errorf("profiled transitions %d != simulated %d", predicted, run.Transitions)
	}
}
