package core

import (
	"sort"

	"ctdvs/internal/cfg"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
)

// Placement summarizes the static code changes a schedule implies: which
// edges need a mode-set instruction at all. The MILP assigns a mode to every
// edge, but a mode-set instruction on edge (i, j) is *silent* — never fires
// at run time — when every profiled way of reaching block i already leaves
// the processor in (i, j)'s mode; the paper notes such instructions can be
// removed or hoisted by a compiler post-pass (Section 4.2: "a mode set
// instruction in the backward edge of a heavily executed loop will be silent
// for all but possibly the first iteration").
type Placement struct {
	// Required lists the edges that must carry a mode-set instruction,
	// deterministically ordered.
	Required []cfg.Edge
	// Silent lists the edges whose assignment never changes the mode at run
	// time and can be omitted entirely.
	Silent []cfg.Edge
	// Hoistable lists required edges that are loop back or entry edges
	// whose instruction fires at most once per loop entry (the transition
	// count along the edge is far below its traversal count), the paper's
	// hoisting candidates.
	Hoistable []cfg.Edge
}

// StaticModeSets returns len(p.Required), the number of mode-set
// instructions a compiler must emit for the schedule.
func (p *Placement) StaticModeSets() int { return len(p.Required) }

// PlaceModeSets analyses a schedule against a profile and classifies every
// edge assignment as required, silent, or hoistable.
//
// An edge (i, j) is silent when, for every profiled in-edge (h, i) with
// non-zero traversal count, the mode after (h, i) equals (i, j)'s mode —
// then the instruction never observes a different current mode. The entry
// edge is silent when it matches the schedule's initial mode. Classification
// uses only profile counts, so an unprofiled path could in principle fire a
// "silent" instruction; a conservative compiler would keep them, an
// aggressive one (as evaluated here, matching the paper's run-time
// accounting which charges nothing for same-mode sets) removes them.
func PlaceModeSets(pr *profile.Profile, sched *sim.Schedule) *Placement {
	g := pr.Graph
	pl := &Placement{}

	modeOf := func(e cfg.Edge) int {
		if m, ok := sched.Assignment[e]; ok {
			return m
		}
		return -1 // no instruction: keeps the current mode
	}

	for ei, e := range g.Edges {
		m, ok := sched.Assignment[e]
		if !ok {
			continue
		}
		if pr.EdgeCounts[ei] == 0 {
			// Never executed: trivially silent.
			pl.Silent = append(pl.Silent, e)
			continue
		}
		silent := true
		if e.From == cfg.Entry {
			silent = m == sched.Initial
		} else {
			for _, h := range g.Preds(e.From) {
				in := cfg.Edge{From: h, To: e.From}
				if pr.EdgeCounts[g.EdgeID(in)] == 0 {
					continue
				}
				if modeOf(in) != m {
					silent = false
					break
				}
			}
		}
		if silent {
			pl.Silent = append(pl.Silent, e)
			continue
		}
		pl.Required = append(pl.Required, e)
		// Hoisting candidate: a back edge (target dominates in the loop
		// sense: the edge re-enters a block it descends from) whose
		// instruction fires only on mode disagreements, which the profile
		// bounds by the number of loop entries rather than iterations.
		if transitions := profiledTransitions(pr, sched, e); transitions*10 < pr.EdgeCounts[ei] {
			pl.Hoistable = append(pl.Hoistable, e)
		}
	}

	sortEdges(pl.Required)
	sortEdges(pl.Silent)
	sortEdges(pl.Hoistable)
	return pl
}

// profiledTransitions counts how many traversals of edge e actually change
// the mode, using the local-path profile: a traversal entering e's source
// along (h, i) fires iff mode(h, i) ≠ mode(e).
func profiledTransitions(pr *profile.Profile, sched *sim.Schedule, e cfg.Edge) int64 {
	g := pr.Graph
	m := sched.Assignment[e]
	if e.From == cfg.Entry {
		if m != sched.Initial {
			return 1
		}
		return 0
	}
	var fires int64
	for pi, p := range g.Paths {
		if p.Mid != e.From || p.Out != e.To {
			continue
		}
		in := cfg.Edge{From: p.In, To: p.Mid}
		if inMode, ok := sched.Assignment[in]; !ok || inMode != m {
			fires += pr.PathCounts[pi]
		}
	}
	return fires
}

// Strip returns a copy of the schedule with all silent assignments removed.
// Executing the stripped schedule on the profiled input is behaviourally
// identical (same modes everywhere, same transitions); it simply emits
// fewer static instructions.
func (p *Placement) Strip(sched *sim.Schedule) *sim.Schedule {
	out := &sim.Schedule{
		Modes:      sched.Modes,
		Initial:    sched.Initial,
		Regulator:  sched.Regulator,
		Assignment: make(map[cfg.Edge]int, len(p.Required)),
	}
	for _, e := range p.Required {
		out.Assignment[e] = sched.Assignment[e]
	}
	return out
}

func sortEdges(es []cfg.Edge) {
	sort.Slice(es, func(a, b int) bool {
		if es[a].From != es[b].From {
			return es[a].From < es[b].From
		}
		return es[a].To < es[b].To
	})
}
