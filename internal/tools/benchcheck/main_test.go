package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCollectMetrics gathers exactly the gated fields: speedups (not their
// floors) and allocation counts, nested objects and arrays included.
func TestCollectMetrics(t *testing.T) {
	rec := map[string]interface{}{
		"speedup_nodes":       1.5,
		"speedup_nodes_floor": 1.1,
		"warm_allocs_per_op":  12.0,
		"warm_allocs_ceiling": 20.0,
		"other":               3.0,
		"nested":              map[string]interface{}{"speedup_inner": 2.0},
		"rows":                []interface{}{map[string]interface{}{"speedup_row": 1.2}},
	}
	m := map[string]float64{}
	collectMetrics("BENCH_x.json", "", rec, m)
	want := map[string]float64{
		"BENCH_x.json:speedup_nodes":        1.5,
		"BENCH_x.json:warm_allocs_per_op":   12.0,
		"BENCH_x.json:nested.speedup_inner": 2.0,
		"BENCH_x.json:rows[0].speedup_row":  1.2,
	}
	if len(m) != len(want) {
		t.Fatalf("collected %v, want %v", m, want)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v", k, m[k], v)
		}
	}
}

// TestCheckHistory exercises both regression directions and the slack band.
func TestCheckHistory(t *testing.T) {
	prev := &historyEntry{Metrics: map[string]float64{
		"a:speedup_x":          2.0,
		"a:warm_allocs_per_op": 10.0,
		"a:speedup_gone":       1.5,
	}}
	cases := []struct {
		name string
		cur  map[string]float64
		bad  int
	}{
		{"unchanged", map[string]float64{"a:speedup_x": 2.0, "a:warm_allocs_per_op": 10.0}, 0},
		{"within slack", map[string]float64{"a:speedup_x": 1.85, "a:warm_allocs_per_op": 10.9}, 0},
		{"speedup regressed", map[string]float64{"a:speedup_x": 1.7}, 1},
		{"allocs regressed", map[string]float64{"a:warm_allocs_per_op": 12.0}, 1},
		{"new metric ignored", map[string]float64{"a:speedup_new": 0.1}, 0},
		{"retired metric ignored", map[string]float64{}, 0},
	}
	for _, tc := range cases {
		var bad []string
		checkHistory(prev, tc.cur, 0.10, &bad)
		if len(bad) != tc.bad {
			t.Errorf("%s: got %d violations %v, want %d", tc.name, len(bad), bad, tc.bad)
		}
	}
	// No previous entry: everything passes.
	var bad []string
	checkHistory(nil, map[string]float64{"a:speedup_x": 0.1}, 0.10, &bad)
	if len(bad) != 0 {
		t.Errorf("nil prev: got %v", bad)
	}
}

// TestLastHistoryEntry reads the final non-empty line and tolerates a
// missing file.
func TestLastHistoryEntry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_history.jsonl")
	if e, err := lastHistoryEntry(path); err != nil || e != nil {
		t.Fatalf("missing file: got %v, %v", e, err)
	}
	data := `{"time":"t1","metrics":{"a:speedup_x":1}}
{"time":"t2","metrics":{"a:speedup_x":2}}

`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := lastHistoryEntry(path)
	if err != nil {
		t.Fatal(err)
	}
	if e == nil || e.Time != "t2" || e.Metrics["a:speedup_x"] != 2 {
		t.Fatalf("got %+v, want the t2 entry", e)
	}
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lastHistoryEntry(path); err == nil {
		t.Fatal("corrupt history: want error")
	}
}
