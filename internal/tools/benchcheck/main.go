// Command benchcheck gates CI on the perf records the benchmarks write: the
// committed BENCH_*.json files. A record that stops honoring its own claims —
// a speedup below its floor, an allocation count above its ceiling — means an
// optimization the repo advertises (warm starts, parallel branch-and-bound,
// the binary artifact store, recorded profiling, the compiled simulator
// kernel, pooled replay) is costing instead of saving, and the build should
// say so loudly.
//
// # Record schema
//
// Records are arbitrary JSON; benchcheck walks every object and enforces two
// field conventions:
//
//   - Speedups. Every numeric field whose key path contains "speedup" must be
//     at least 1.0 — unless a sibling field named "<key>_floor" exists, in
//     which case the value must be at least that floor (so a record can claim
//     "binary decode is ≥1.3x faster than JSON", not merely "not slower").
//     Floor fields themselves (keys ending in "_floor") state requirements
//     and are not checked as speedups.
//
//   - Allocation ceilings. Every numeric field whose key ends in
//     "allocs_per_op" is checked against the sibling field whose key replaces
//     that suffix with "allocs_ceiling", when present: measured allocations
//     per operation must not exceed the ceiling. A ceiling with no measured
//     sibling is an error — a stale claim nothing backs.
//
// Run it from the repository root:
//
//	go run ./internal/tools/benchcheck
//
// It exits nonzero listing every offending field, or prints a one-line
// summary when all records pass.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// checkValue walks an arbitrary decoded JSON value and reports every field
// that violates the speedup-floor or allocation-ceiling conventions.
func checkValue(file, path string, v interface{}, bad *[]string) {
	switch t := v.(type) {
	case map[string]interface{}:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if path != "" {
				p = path + "." + k
			}
			num, isNum := t[k].(float64)
			switch {
			case isNum && strings.Contains(strings.ToLower(k), "speedup") && !strings.HasSuffix(k, "_floor"):
				floor := 1.0
				if f, ok := t[k+"_floor"].(float64); ok {
					floor = f
				}
				if num < floor {
					*bad = append(*bad, fmt.Sprintf("%s: %s = %v < %v", file, p, num, floor))
				}
			case isNum && strings.HasSuffix(k, "allocs_per_op"):
				ck := strings.TrimSuffix(k, "allocs_per_op") + "allocs_ceiling"
				if ceil, ok := t[ck].(float64); ok && num > ceil {
					*bad = append(*bad, fmt.Sprintf("%s: %s = %v > ceiling %v", file, p, num, ceil))
				}
			case isNum && strings.HasSuffix(k, "allocs_ceiling"):
				mk := strings.TrimSuffix(k, "allocs_ceiling") + "allocs_per_op"
				if _, ok := t[mk].(float64); !ok {
					*bad = append(*bad, fmt.Sprintf("%s: %s has no measured sibling %s", file, p, mk))
				}
			}
			checkValue(file, p, t[k], bad)
		}
	case []interface{}:
		for i, e := range t {
			checkValue(file, fmt.Sprintf("%s[%d]", path, i), e, bad)
		}
	}
}

func main() {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	sort.Strings(files)
	var bad []string
	checked := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		var v interface{}
		if err := json.Unmarshal(data, &v); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", f, err)
			os.Exit(1)
		}
		checkValue(f, "", v, &bad)
		checked++
	}
	if len(bad) > 0 {
		for _, line := range bad {
			fmt.Fprintf(os.Stderr, "benchcheck: %s\n", line)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d record(s) ok\n", checked)
}
