// Command benchcheck gates CI on the perf records the benchmarks write: the
// committed BENCH_*.json files. A record that stops honoring its own claims —
// a speedup below its floor, an allocation count above its ceiling — means an
// optimization the repo advertises (warm starts, parallel branch-and-bound,
// the binary artifact store, recorded profiling, the compiled simulator
// kernel, pooled replay) is costing instead of saving, and the build should
// say so loudly.
//
// # Record schema
//
// Records are arbitrary JSON; benchcheck walks every object and enforces two
// field conventions:
//
//   - Speedups. Every numeric field whose key path contains "speedup" must be
//     at least 1.0 — unless a sibling field named "<key>_floor" exists, in
//     which case the value must be at least that floor (so a record can claim
//     "binary decode is ≥1.3x faster than JSON", not merely "not slower").
//     Floor fields themselves (keys ending in "_floor") state requirements
//     and are not checked as speedups.
//
//   - Allocation ceilings. Every numeric field whose key ends in
//     "allocs_per_op" is checked against the sibling field whose key replaces
//     that suffix with "allocs_ceiling", when present: measured allocations
//     per operation must not exceed the ceiling. A ceiling with no measured
//     sibling is an error — a stale claim nothing backs.
//
// Run it from the repository root:
//
//	go run ./internal/tools/benchcheck
//
// It exits nonzero listing every offending field, or prints a one-line
// summary when all records pass.
//
// # History mode
//
// With -history, benchcheck additionally normalizes the gated metrics of all
// records — every speedup and allocs_per_op field, keyed by
// "<file>:<dotted.path>" — compares them against the most recent entry of
// BENCH_history.jsonl, and appends the new entry on success. A speedup that
// fell more than -history-slack (fractionally) below its previous value, or
// an allocation count that rose more than -history-slack above it, fails the
// run and leaves the history file untouched, so the last committed entry
// stays the baseline. Metrics present on only one side (new or retired
// benchmarks) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// checkValue walks an arbitrary decoded JSON value and reports every field
// that violates the speedup-floor or allocation-ceiling conventions.
func checkValue(file, path string, v interface{}, bad *[]string) {
	switch t := v.(type) {
	case map[string]interface{}:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if path != "" {
				p = path + "." + k
			}
			num, isNum := t[k].(float64)
			switch {
			case isNum && strings.Contains(strings.ToLower(k), "speedup") && !strings.HasSuffix(k, "_floor"):
				floor := 1.0
				if f, ok := t[k+"_floor"].(float64); ok {
					floor = f
				}
				if num < floor {
					*bad = append(*bad, fmt.Sprintf("%s: %s = %v < %v", file, p, num, floor))
				}
			case isNum && strings.HasSuffix(k, "allocs_per_op"):
				ck := strings.TrimSuffix(k, "allocs_per_op") + "allocs_ceiling"
				if ceil, ok := t[ck].(float64); ok && num > ceil {
					*bad = append(*bad, fmt.Sprintf("%s: %s = %v > ceiling %v", file, p, num, ceil))
				}
			case isNum && strings.HasSuffix(k, "allocs_ceiling"):
				mk := strings.TrimSuffix(k, "allocs_ceiling") + "allocs_per_op"
				if _, ok := t[mk].(float64); !ok {
					*bad = append(*bad, fmt.Sprintf("%s: %s has no measured sibling %s", file, p, mk))
				}
			}
			checkValue(file, p, t[k], bad)
		}
	case []interface{}:
		for i, e := range t {
			checkValue(file, fmt.Sprintf("%s[%d]", path, i), e, bad)
		}
	}
}

// collectMetrics walks a decoded record and gathers the gated numeric
// metrics — speedups and allocation counts — under their "<file>:<path>"
// keys, the normalized form the history file stores.
func collectMetrics(file, path string, v interface{}, metrics map[string]float64) {
	switch t := v.(type) {
	case map[string]interface{}:
		for k, e := range t {
			p := k
			if path != "" {
				p = path + "." + k
			}
			num, isNum := e.(float64)
			if isNum {
				lower := strings.ToLower(k)
				if (strings.Contains(lower, "speedup") && !strings.HasSuffix(k, "_floor")) ||
					strings.HasSuffix(k, "allocs_per_op") {
					metrics[file+":"+p] = num
				}
			}
			collectMetrics(file, p, e, metrics)
		}
	case []interface{}:
		for i, e := range t {
			collectMetrics(file, fmt.Sprintf("%s[%d]", path, i), e, metrics)
		}
	}
}

// historyEntry is one line of BENCH_history.jsonl.
type historyEntry struct {
	Time    string             `json:"time"`
	Metrics map[string]float64 `json:"metrics"`
}

// lastHistoryEntry returns the final entry of the history file, or nil when
// the file does not exist or holds no entries.
func lastHistoryEntry(path string) (*historyEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var last *historyEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e historyEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		last = &e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return last, nil
}

// checkHistory compares the current metrics against the previous entry.
// Allocation counts regress upward, everything else (speedups) downward;
// slack is the tolerated fractional drift before a changed metric fails.
func checkHistory(prev *historyEntry, cur map[string]float64, slack float64, bad *[]string) {
	if prev == nil {
		return
	}
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		was, ok := prev.Metrics[k]
		if !ok {
			continue
		}
		now := cur[k]
		if strings.HasSuffix(k, "allocs_per_op") {
			if now > was*(1+slack) {
				*bad = append(*bad, fmt.Sprintf("history: %s = %v rose above previous %v (+%.0f%% slack)",
					k, now, was, 100*slack))
			}
		} else if now < was*(1-slack) {
			*bad = append(*bad, fmt.Sprintf("history: %s = %v fell below previous %v (-%.0f%% slack)",
				k, now, was, 100*slack))
		}
	}
}

func main() {
	history := flag.Bool("history", false, "compare gated metrics against BENCH_history.jsonl and append this run on success")
	historyFile := flag.String("history-file", "BENCH_history.jsonl", "history file for -history mode")
	historySlack := flag.Float64("history-slack", 0.10, "tolerated fractional regression vs the previous history entry")
	flag.Parse()

	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	sort.Strings(files)
	var bad []string
	checked := 0
	metrics := map[string]float64{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		var v interface{}
		if err := json.Unmarshal(data, &v); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", f, err)
			os.Exit(1)
		}
		checkValue(f, "", v, &bad)
		if *history {
			collectMetrics(f, "", v, metrics)
		}
		checked++
	}
	if *history {
		prev, err := lastHistoryEntry(*historyFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		checkHistory(prev, metrics, *historySlack, &bad)
		if len(bad) == 0 {
			entry := historyEntry{Time: time.Now().UTC().Format(time.RFC3339), Metrics: metrics}
			line, err := json.Marshal(entry)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
				os.Exit(1)
			}
			f, err := os.OpenFile(*historyFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
				os.Exit(1)
			}
			if _, err := f.Write(append(line, '\n')); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if len(bad) > 0 {
		for _, line := range bad {
			fmt.Fprintf(os.Stderr, "benchcheck: %s\n", line)
		}
		os.Exit(1)
	}
	if *history {
		fmt.Printf("benchcheck: %d record(s) ok, %d metric(s) appended to %s\n", checked, len(metrics), *historyFile)
		return
	}
	fmt.Printf("benchcheck: %d record(s) ok\n", checked)
}
