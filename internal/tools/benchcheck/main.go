// Command benchcheck gates CI on the perf records the benchmarks write: every
// numeric field of every BENCH_*.json whose name contains "speedup" must be
// at least 1.0. A speedup below 1 means an optimization that the repo claims
// (warm starts, parallel branch-and-bound, the artifact store, recorded
// profiling, the compiled simulator kernel) is costing time instead of saving
// it, and the build should say so loudly.
//
// Run it from the repository root:
//
//	go run ./internal/tools/benchcheck
//
// It exits nonzero listing every offending field, or prints a one-line
// summary when all records pass.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// checkValue walks an arbitrary decoded JSON value and reports every numeric
// field whose key path contains "speedup" with a value below 1.0.
func checkValue(file, path string, v interface{}, bad *[]string) {
	switch t := v.(type) {
	case map[string]interface{}:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if path != "" {
				p = path + "." + k
			}
			checkValue(file, p, t[k], bad)
		}
	case []interface{}:
		for i, e := range t {
			checkValue(file, fmt.Sprintf("%s[%d]", path, i), e, bad)
		}
	case float64:
		if strings.Contains(strings.ToLower(path), "speedup") && t < 1.0 {
			*bad = append(*bad, fmt.Sprintf("%s: %s = %v < 1.0", file, path, t))
		}
	}
}

func main() {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	sort.Strings(files)
	var bad []string
	checked := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		var v interface{}
		if err := json.Unmarshal(data, &v); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", f, err)
			os.Exit(1)
		}
		checkValue(f, "", v, &bad)
		checked++
	}
	if len(bad) > 0 {
		for _, line := range bad {
			fmt.Fprintf(os.Stderr, "benchcheck: %s\n", line)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d record(s) ok\n", checked)
}
