package workloads

import (
	"fmt"

	"ctdvs/internal/ir"
)

// This file extends the benchmark suite from single programs to task graphs:
// DAGs of the suite's benchmarks with precedence edges, a core count, and a
// deadline position, the multi-core counterpart of Spec. The families mirror
// the shapes embedded applications actually exhibit — fork-join pipelines
// (decode → parallel filters → merge), straight-line chains (a software
// radio), and MPI-style mixes with uneven stage weights.

// TaskRef names one task of a graph: which benchmark it runs (by suite name),
// which of its inputs, and optional release/per-task deadline offsets.
type TaskRef struct {
	Bench string
	// Input selects Spec.Inputs[Input] (0 = default).
	Input int
	// ReleaseUS and DeadlineUS carry over to ir.Task verbatim (0 = none).
	ReleaseUS  float64
	DeadlineUS float64
}

// GraphSpec bundles a task-graph workload: the DAG of benchmark tasks, the
// core count it targets, and the graph deadline as a fraction of the
// [fastest, slowest] placed-makespan span (the multi-core analogue of
// Spec.DeadlineFracs).
type GraphSpec struct {
	Name  string
	Cores int
	Tasks []TaskRef
	Edges [][2]int
	// DeadlineFrac positions the graph deadline in the span between the
	// all-fastest and all-slowest placed makespans, like Spec.DeadlineFracs
	// positions single-program deadlines.
	DeadlineFrac float64
}

// Deadline materializes the graph deadline (µs) from the measured all-fastest
// and all-slowest placed makespans.
func (gs *GraphSpec) Deadline(fastUS, slowUS float64) float64 {
	return fastUS + gs.DeadlineFrac*(slowUS-fastUS)
}

// Build resolves the benchmark references against the suite at the given
// scale and returns the executable task graph. Task names are
// "bench#index" so repeated benchmarks stay distinct.
func (gs *GraphSpec) Build(scale float64) (*ir.TaskGraph, error) {
	byName := make(map[string]*Spec)
	for _, s := range All(scale) {
		byName[s.Name] = s
	}
	return gs.BuildFrom(func(name string) (*Spec, error) {
		s, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
		}
		return s, nil
	})
}

// BuildFrom is Build with a caller-supplied benchmark resolver, so callers
// that cache specs (package exp) can build graphs whose task programs are
// pointer-identical to the cached specs' programs.
func (gs *GraphSpec) BuildFrom(lookup func(name string) (*Spec, error)) (*ir.TaskGraph, error) {
	g := &ir.TaskGraph{Name: gs.Name, Edges: gs.Edges}
	for i, ref := range gs.Tasks {
		s, err := lookup(ref.Bench)
		if err != nil {
			return nil, fmt.Errorf("workloads: graph %q task %d: %w", gs.Name, i, err)
		}
		if ref.Input < 0 || ref.Input >= len(s.Inputs) {
			return nil, fmt.Errorf("workloads: graph %q task %d selects input %d of %d", gs.Name, i, ref.Input, len(s.Inputs))
		}
		g.Tasks = append(g.Tasks, &ir.Task{
			Name:       fmt.Sprintf("%s#%d", ref.Bench, i),
			Program:    s.Program,
			Input:      s.Inputs[ref.Input],
			ReleaseUS:  ref.ReleaseUS,
			DeadlineUS: ref.DeadlineUS,
		})
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("workloads: graph %q: %w", gs.Name, err)
	}
	return g, nil
}

// ForkJoin is a media pipeline: one decode task fans out into width parallel
// filter tasks which join into an encode task. Filters alternate between a
// compute-heavy and a memory-heavy benchmark so the per-core mode choices
// differ.
func ForkJoin(width, cores int) *GraphSpec {
	if width < 1 {
		width = 1
	}
	gs := &GraphSpec{
		Name:         fmt.Sprintf("fork-join-%dw", width),
		Cores:        cores,
		DeadlineFrac: 0.45,
	}
	gs.Tasks = append(gs.Tasks, TaskRef{Bench: "mpeg/decode"})
	for i := 0; i < width; i++ {
		bench := "adpcm/encode"
		if i%2 == 1 {
			bench = "mpg123"
		}
		gs.Tasks = append(gs.Tasks, TaskRef{Bench: bench})
		mid := len(gs.Tasks) - 1
		gs.Edges = append(gs.Edges, [2]int{0, mid})
	}
	gs.Tasks = append(gs.Tasks, TaskRef{Bench: "gsm/encode"})
	sink := len(gs.Tasks) - 1
	for i := 0; i < width; i++ {
		gs.Edges = append(gs.Edges, [2]int{1 + i, sink})
	}
	return gs
}

// Chain is a straight-line pipeline of length n alternating compute- and
// memory-bound stages; on one core it degenerates to serial composition, so
// it exercises the same-core transition accounting.
func Chain(n, cores int) *GraphSpec {
	if n < 2 {
		n = 2
	}
	gs := &GraphSpec{
		Name:         fmt.Sprintf("chain-%d", n),
		Cores:        cores,
		DeadlineFrac: 0.5,
	}
	rotation := []string{"adpcm/encode", "epic", "gsm/encode"}
	for i := 0; i < n; i++ {
		gs.Tasks = append(gs.Tasks, TaskRef{Bench: rotation[i%len(rotation)]})
		if i > 0 {
			gs.Edges = append(gs.Edges, [2]int{i - 1, i})
		}
	}
	return gs
}

// MPIMix is an MPI-style mix: two unequal-length parallel branches between a
// scatter and a gather task. The imbalance creates the idle slack the online
// governor reclaims.
func MPIMix(cores int) *GraphSpec {
	return &GraphSpec{
		Name:         "mpi-mix",
		Cores:        cores,
		DeadlineFrac: 0.4,
		Tasks: []TaskRef{
			{Bench: "adpcm/encode"}, // 0: scatter
			{Bench: "ghostscript"},  // 1: long branch
			{Bench: "gsm/encode"},   // 2: short branch, stage 1
			{Bench: "mpg123"},       // 3: short branch, stage 2
			{Bench: "epic"},         // 4: gather
		},
		Edges: [][2]int{{0, 1}, {0, 2}, {2, 3}, {1, 4}, {3, 4}},
	}
}

// Graphs returns the task-graph corpus, the multi-core analogue of All.
func Graphs() []*GraphSpec {
	return []*GraphSpec{
		ForkJoin(2, 2),
		ForkJoin(4, 4),
		Chain(4, 1),
		Chain(5, 2),
		MPIMix(2),
	}
}

// Graph looks up a corpus graph by name; ok is false if the name is unknown.
func Graph(name string) (*GraphSpec, bool) {
	for _, gs := range Graphs() {
		if gs.Name == name {
			return gs, true
		}
	}
	return nil, false
}
