package workloads

import (
	"math"
	"testing"

	"ctdvs/internal/ir"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// Full-scale calibration targets from the paper (Tables 4 and 7).
type target struct {
	nCacheK, nOverlapK, nDependentK float64 // Kcycles
	tInvariantUS                    float64
	t200MS, t600MS, t800MS          float64 // Table 4, milliseconds
}

var targets = map[string]target{
	"adpcm/encode": {732.7, 735.6, 4302.0, 915.9, 29.5, 9.9, 7.4},
	"epic":         {8835.6, 12190.4, 9290.1, 4955.9, 152.6, 53.6, 41.0},
	"gsm/encode":   {13979.6, 13383.0, 29438.3, 389.0, 334.0, 111.4, 83.6},
	"mpeg/decode":  {42621.1, 44068.7, 27592.1, 2713.4, 557.6, 187.3, 141.0},
	"mpg123":       {0, 0, 0, 0, 177.7, 59.2, 44.4},
	"ghostscript":  {0, 0, 0, 0, 2.0, 0.89, 0.74},
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return math.Abs(got-want) / want
}

// TestCalibrationFullScale checks the measured program parameters and
// fixed-mode runtimes against the paper's published values. The tolerance is
// deliberately loose (35%): the goal is that the optimization problems have
// the paper's shape, not digit-exact replication of a 2003 testbed.
func TestCalibrationFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration is slow")
	}
	m := sim.MustNew(sim.DefaultConfig())
	for _, spec := range All(1.0) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tgt, ok := targets[spec.Name]
			if !ok {
				t.Fatalf("no target for %s", spec.Name)
			}
			pr, err := profile.Collect(m, spec.Program, spec.Inputs[0], volt.XScale3())
			if err != nil {
				t.Fatal(err)
			}
			const tol = 0.35
			if tgt.nCacheK > 0 {
				p := pr.Params
				checks := []struct {
					name       string
					got, wantK float64
				}{
					{"Ncache", float64(p.NCache) / 1e3, tgt.nCacheK},
					{"Noverlap", float64(p.NOverlap) / 1e3, tgt.nOverlapK},
					{"Ndependent", float64(p.NDependent) / 1e3, tgt.nDependentK},
					{"tinvariant", p.TInvariantUS, tgt.tInvariantUS},
				}
				for _, c := range checks {
					if e := relErr(c.got, c.wantK); e > tol {
						t.Errorf("%s = %.1f, paper %.1f (err %.0f%%)", c.name, c.got, c.wantK, e*100)
					}
				}
			}
			times := []struct {
				mode   int
				wantMS float64
			}{{0, tgt.t200MS}, {1, tgt.t600MS}, {2, tgt.t800MS}}
			for _, c := range times {
				gotMS := pr.TotalTimeUS[c.mode] / 1e3
				if e := relErr(gotMS, c.wantMS); e > tol {
					t.Errorf("t%v = %.2f ms, paper %.2f ms (err %.0f%%)",
						pr.Modes.Mode(c.mode).F, gotMS, c.wantMS, e*100)
				}
			}
			t.Logf("%s: %s", spec.Name, sim.FormatParams(pr.Params))
			t.Logf("%s: t200=%.1fms t600=%.1fms t800=%.1fms", spec.Name,
				pr.TotalTimeUS[0]/1e3, pr.TotalTimeUS[1]/1e3, pr.TotalTimeUS[2]/1e3)
		})
	}
}

func TestDeadlineOrderingAndFeasibility(t *testing.T) {
	m := sim.MustNew(sim.DefaultConfig())
	for _, spec := range All(0.02) {
		pr, err := profile.Collect(m, spec.Program, spec.Inputs[0], volt.XScale3())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		tFast := pr.TotalTimeUS[pr.Modes.Len()-1]
		tSlow := pr.TotalTimeUS[0]
		dls := spec.Deadlines(tFast, tSlow)
		prev := tFast
		for k, dl := range dls {
			if dl < prev {
				t.Errorf("%s: deadline %d (%v) below previous (%v)", spec.Name, k+1, dl, prev)
			}
			if dl < tFast {
				t.Errorf("%s: deadline %d infeasible (%v < fastest %v)", spec.Name, k+1, dl, tFast)
			}
			prev = dl
		}
		if spec.Deadline(1, tFast, tSlow) != dls[0] || spec.Deadline(5, tFast, tSlow) != dls[4] {
			t.Errorf("%s: Deadline accessor mismatch", spec.Name)
		}
	}
}

func TestDeadlinePanicsOutOfRange(t *testing.T) {
	spec := Adpcm(0.01)
	defer func() {
		if recover() == nil {
			t.Error("Deadline(0) did not panic")
		}
	}()
	spec.Deadline(0, 1, 2)
}

func TestAllProgramsValid(t *testing.T) {
	for _, scale := range []float64{0.01, 0.1, 1.0} {
		for _, spec := range All(scale) {
			if err := spec.Program.Validate(); err != nil {
				t.Errorf("%s at scale %v: %v", spec.Name, scale, err)
			}
			if len(spec.Inputs) == 0 {
				t.Errorf("%s: no inputs", spec.Name)
			}
		}
	}
	if len(Table7Suite(0.1)) != 4 {
		t.Error("Table7Suite should have 4 benchmarks")
	}
}

func TestMpegInputCategories(t *testing.T) {
	m := sim.MustNew(sim.DefaultConfig())
	spec := MpegDecode(0.05)
	if len(spec.Inputs) != 4 {
		t.Fatalf("mpeg inputs = %d", len(spec.Inputs))
	}
	mode := volt.XScale3().Mode(2)
	times := map[string]float64{}
	bframes := map[string]int64{}
	for _, in := range spec.Inputs {
		res, err := m.Run(spec.Program, in, mode)
		if err != nil {
			t.Fatal(err)
		}
		times[in.Name] = res.TimeUS
		// Block 3 is mb-bframe.
		bframes[in.Name] = res.Blocks[3].Invocations
	}
	// No-B-frame inputs never execute the B path; B-frame inputs do.
	for _, name := range []string{"100b.m2v", "bbc.m2v"} {
		if bframes[name] != 0 {
			t.Errorf("%s executed B-frame path %d times", name, bframes[name])
		}
	}
	for _, name := range []string{"flwr.m2v", "cact.m2v"} {
		if bframes[name] == 0 {
			t.Errorf("%s never executed B-frame path", name)
		}
	}
	// Runtimes differ across inputs (the Figure 19 premise).
	if times["flwr.m2v"] == times["bbc.m2v"] {
		t.Error("flwr and bbc runtimes identical; categories indistinguishable")
	}
}

func TestScaleShrinksRuntime(t *testing.T) {
	m := sim.MustNew(sim.DefaultConfig())
	mode := volt.XScale3().Mode(2)
	small, err := m.Run(Adpcm(0.02).Program, ir.Input{Name: "x", Seed: 1}, mode)
	if err != nil {
		t.Fatal(err)
	}
	big, err := m.Run(Adpcm(0.2).Program, ir.Input{Name: "x", Seed: 1}, mode)
	if err != nil {
		t.Fatal(err)
	}
	if big.TimeUS < 5*small.TimeUS {
		t.Errorf("scale 0.2 (%v µs) not ≈10× scale 0.02 (%v µs)", big.TimeUS, small.TimeUS)
	}
}
