package workloads

import (
	"strings"
	"testing"
)

func TestGraphsBuildAndValidate(t *testing.T) {
	t.Parallel()
	for _, gs := range Graphs() {
		gs := gs
		t.Run(gs.Name, func(t *testing.T) {
			t.Parallel()
			if gs.Cores < 1 {
				t.Fatalf("graph %q targets %d cores", gs.Name, gs.Cores)
			}
			if gs.DeadlineFrac <= 0 || gs.DeadlineFrac >= 1 {
				t.Fatalf("graph %q deadline fraction %v outside (0,1)", gs.Name, gs.DeadlineFrac)
			}
			g, err := gs.Build(0.02)
			if err != nil {
				t.Fatal(err)
			}
			if len(g.Tasks) != len(gs.Tasks) {
				t.Fatalf("built %d tasks from %d refs", len(g.Tasks), len(gs.Tasks))
			}
			if _, err := g.TopoOrder(); err != nil {
				t.Fatal(err)
			}
			seen := map[string]bool{}
			for _, task := range g.Tasks {
				if seen[task.Name] {
					t.Fatalf("duplicate task name %q", task.Name)
				}
				seen[task.Name] = true
			}
		})
	}
}

func TestGraphLookup(t *testing.T) {
	t.Parallel()
	for _, gs := range Graphs() {
		got, ok := Graph(gs.Name)
		if !ok || got.Name != gs.Name {
			t.Errorf("Graph(%q) = %v, %v", gs.Name, got, ok)
		}
	}
	if _, ok := Graph("no-such-graph"); ok {
		t.Error("unknown graph name resolved")
	}
}

func TestGraphSpecBuildErrors(t *testing.T) {
	t.Parallel()
	bad := &GraphSpec{Name: "bad", Cores: 1, Tasks: []TaskRef{{Bench: "nope"}}}
	if _, err := bad.Build(0.02); err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Errorf("unknown benchmark accepted: %v", err)
	}
	badInput := &GraphSpec{Name: "bad-in", Cores: 1, Tasks: []TaskRef{{Bench: "epic", Input: 9}}}
	if _, err := badInput.Build(0.02); err == nil || !strings.Contains(err.Error(), "input") {
		t.Errorf("out-of-range input accepted: %v", err)
	}
	cyclic := &GraphSpec{
		Name:  "cyclic",
		Cores: 1,
		Tasks: []TaskRef{{Bench: "epic"}, {Bench: "mpg123"}},
		Edges: [][2]int{{0, 1}, {1, 0}},
	}
	if _, err := cyclic.Build(0.02); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestGraphDeadlineInterpolates(t *testing.T) {
	t.Parallel()
	gs := &GraphSpec{DeadlineFrac: 0.25}
	if got := gs.Deadline(100, 300); got != 150 {
		t.Errorf("Deadline(100, 300) = %v, want 150", got)
	}
}
