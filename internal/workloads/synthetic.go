package workloads

import (
	"fmt"
	"math/rand"

	"ctdvs/internal/ir"
)

// SyntheticConfig controls the random large-CFG generator used by the
// solver-scaling experiments. Real MediaBench binaries have control-flow
// graphs with thousands of edges; the six calibrated benchmarks above model
// their profile statistics but keep small graphs, so this generator provides
// the dimension the paper's "hours to seconds" filtering claim (Figure 14)
// actually stresses: MILP size.
type SyntheticConfig struct {
	// Regions is the number of sequential loop regions (phases).
	Regions int
	// BlocksPerRegion is the number of diamond-shaped conditionals chained
	// inside each region's loop body.
	BlocksPerRegion int
	// TripsPerRegion is each region loop's trip count.
	TripsPerRegion int
	// Seed drives the random block weights and branch probabilities.
	Seed int64
}

// Validate reports configuration errors.
func (c SyntheticConfig) Validate() error {
	if c.Regions < 1 || c.BlocksPerRegion < 1 || c.TripsPerRegion < 2 {
		return fmt.Errorf("workloads: invalid synthetic config %+v", c)
	}
	return nil
}

// Synthetic builds a random phase-structured program: Regions sequential
// loops, each of whose bodies is a chain of BlocksPerRegion conditional
// diamonds with randomized compute/memory mixes. Roughly half the regions
// are memory-bound (streamed misses with dependent tails) and half
// compute-bound, so the DVS optimizer has real mode-mixing opportunities at
// mid-range deadlines, and the number of control-flow edges grows linearly
// with Regions × BlocksPerRegion.
func Synthetic(c SyntheticConfig) (*Spec, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	b := ir.NewBuilder(fmt.Sprintf("synthetic-r%d-b%d", c.Regions, c.BlocksPerRegion))
	hot := b.StridedStream(4, 128<<10)
	cold := b.StridedStream(lineSize, coldWS)

	entry := b.Block("entry")
	entry.Compute(100)

	prev := entry
	for r := 0; r < c.Regions; r++ {
		memBound := r%2 == 0
		head := b.Block(fmt.Sprintf("r%d-head", r))
		prev.Jump(head)

		// Loop body: a chain of diamonds. Like real programs, the energy
		// distribution is heavy-tailed: a few hot diamonds carry most of
		// the work, so the 2 %-tail filtering has the traction it has on
		// MediaBench CFGs (the paper's Figure 14 premise).
		cur := head
		if memBound {
			cur.Load(cold)
			cur.Compute(20 + rng.Intn(30)).DependentCompute(30 + rng.Intn(40))
		} else {
			cur.Compute(150 + rng.Intn(200))
		}
		for d := 0; d < c.BlocksPerRegion; d++ {
			left := b.Block(fmt.Sprintf("r%d-d%d-a", r, d))
			right := b.Block(fmt.Sprintf("r%d-d%d-b", r, d))
			join := b.Block(fmt.Sprintf("r%d-d%d-join", r, d))
			p := 0.15 + 0.7*rng.Float64()
			b.ProbBranch(cur, left, right, p)
			weight := 1
			if rng.Float64() < 0.15 {
				weight = 20 // hot diamond
			}
			if memBound {
				left.Load(cold).DependentCompute(weight * (20 + rng.Intn(60)))
				right.Compute(weight * (10 + rng.Intn(30)))
				for h := 0; h < weight*(2+rng.Intn(4)); h++ {
					right.Load(hot)
				}
			} else {
				left.Compute(weight * (100 + rng.Intn(250)))
				right.Compute(weight * (80 + rng.Intn(200)))
				for h := 0; h < weight*rng.Intn(3); h++ {
					left.Load(hot)
				}
			}
			left.Jump(join)
			right.Jump(join)
			join.Compute(5 + rng.Intn(10))
			cur = join
		}
		latch := b.Block(fmt.Sprintf("r%d-latch", r))
		cur.Jump(latch)
		latch.Compute(10)
		exitStub := b.Block(fmt.Sprintf("r%d-exit", r))
		b.LoopBranch(latch, head, exitStub, c.TripsPerRegion)
		exitStub.Compute(20)
		prev = exitStub
	}
	done := b.Block("done")
	prev.Jump(done)
	done.Compute(50)
	done.Exit()

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:          prog.Name,
		Program:       prog,
		Inputs:        []ir.Input{{Name: "synthetic", Seed: c.Seed + 1}},
		DeadlineFracs: [5]float64{0.02, 0.08, 0.15, 0.50, 0.98},
	}, nil
}
