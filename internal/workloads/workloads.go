// Package workloads provides the synthetic MediaBench-like benchmark suite
// the reproduction is evaluated on: adpcm/encode, epic, gsm/encode,
// mpeg/decode, mpg123 and ghostscript, written in the mini-IR of package ir.
//
// The original paper profiles MediaBench binaries under SimpleScalar; its
// evaluation depends on the programs only through their profile statistics.
// Each constructor here is calibrated so that, at full scale on the default
// simulator configuration, the measured aggregate parameters approximate the
// paper's Table 7
//
//	benchmark     Ncache(Kcyc) Noverlap(Kcyc) Ndependent(Kcyc) tinv(µs)
//	adpcm              732.7        735.6         4302.0        915.9
//	epic              8835.6      12190.4         9290.1       4955.9
//	gsm              13979.6      13383.0        29438.3        389.0
//	mpeg/decode      42621.1      44068.7        27592.1       2713.4
//
// and the fixed-mode runtimes approximate Table 4 (200/600/800 MHz columns).
// mpg123 and ghostscript have no Table 7 row; they are calibrated against
// their Table 4 runtimes only (mpg123 ≈ pure computation; ghostscript small
// with a pronounced memory component).
//
// Loop trip counts scale with the Scale parameter so tests can run the suite
// cheaply; deadlines are expressed as fractions of the span between the
// fastest and slowest fixed-mode runtimes (the paper's Figure 16 positions),
// making them meaningful at every scale.
package workloads

import (
	"fmt"
	"math"

	"ctdvs/internal/ir"
)

// Spec bundles a constructed benchmark with its inputs and deadline
// positions.
type Spec struct {
	Name    string
	Program *ir.Program
	// Inputs for profiling/execution; Inputs[0] is the default.
	Inputs []ir.Input
	// DeadlineFracs places the paper's five deadlines (index 0 = Deadline 1,
	// most stringent) as fractions of the [t_fast, t_slow] runtime span,
	// derived from Table 4.
	DeadlineFracs [5]float64
}

// Deadlines materializes the five deadlines (µs) given the measured fastest
// and slowest fixed-mode runtimes.
func (s *Spec) Deadlines(tFastUS, tSlowUS float64) [5]float64 {
	var out [5]float64
	for i, f := range s.DeadlineFracs {
		out[i] = tFastUS + f*(tSlowUS-tFastUS)
	}
	return out
}

// Deadline returns deadline number k (1-based, 1 = most stringent, as in the
// paper's tables).
func (s *Spec) Deadline(k int, tFastUS, tSlowUS float64) float64 {
	if k < 1 || k > 5 {
		panic(fmt.Sprintf("workloads: deadline %d out of range", k))
	}
	return s.Deadlines(tFastUS, tSlowUS)[k-1]
}

// trips scales a full-scale loop trip count, keeping at least 2 iterations.
func trips(full int, scale float64) int {
	t := int(math.Round(float64(full) * scale))
	if t < 2 {
		t = 2
	}
	return t
}

// loads appends n loads from stream s to blk.
func loads(blk *ir.Block, s, n int) {
	for i := 0; i < n; i++ {
		blk.Load(s)
	}
}

// Working-set sizes shared by the suite: the hot set exceeds L1 (64 KB) and
// fits L2 (512 KB), so steady-state accesses alternate L1 hits with L2 hits;
// the cold set is streamed with one cache line per access, so every access
// is a main-memory miss.
const (
	hotWS    = 256 << 10
	coldWS   = 128 << 20
	lineSize = 32
)

// Adpcm builds adpcm/encode: a single sample-processing loop, heavily
// dependent computation (bit-serial prediction), light memory traffic.
func Adpcm(scale float64) *Spec {
	b := ir.NewBuilder("adpcm/encode")
	// 128 KB hot set: thrashes L1, fits L2, and its 4096 cold-start misses
	// plus the step-up path's streamed loads (probability 0.55) land the
	// total miss count near the paper's 9159 (tinvariant 915.9 µs).
	hot := b.StridedStream(4, 128<<10)
	cold := b.StridedStream(lineSize, coldWS)

	init := b.Block("init")
	head := b.Block("sample-head")
	stepUp := b.Block("step-up")
	stepDown := b.Block("step-down")
	latch := b.Block("sample-latch")
	flush := b.Block("flush")

	init.Compute(500)
	loads(init, hot, 40)
	init.Jump(head)

	// Per iteration targets (I = 9160): hot ≈ 24, cold ≈ 0.55, overlap ≈ 80,
	// dependent ≈ 470.
	loads(head, hot, 12)
	head.Compute(40).DependentCompute(150)
	b.ProbBranch(head, stepUp, stepDown, 0.55)

	loads(stepUp, hot, 6)
	stepUp.Load(cold)
	stepUp.Compute(20).DependentCompute(200)
	stepUp.Jump(latch)

	loads(stepDown, hot, 6)
	stepDown.Compute(20).DependentCompute(190)
	stepDown.Jump(latch)

	loads(latch, hot, 6)
	latch.Compute(20).DependentCompute(125)
	b.LoopBranch(latch, head, flush, trips(9160, scale))

	flush.Compute(300).DependentCompute(100)
	loads(flush, hot, 20)
	flush.Exit()

	return &Spec{
		Name:          "adpcm/encode",
		Program:       b.MustFinish(),
		Inputs:        []ir.Input{{Name: "clinton.pcm", Seed: 101}},
		DeadlineFracs: [5]float64{0.009, 0.032, 0.118, 0.570, 0.977},
	}
}

// Epic builds the epic image coder: a wavelet-pyramid phase followed by a
// quantize/encode phase, both with modest per-iteration work and a large
// miss count (tinvariant is the biggest in the suite).
func Epic(scale float64) *Spec {
	b := ir.NewBuilder("epic")
	hot := b.StridedStream(4, 128<<10)
	cold := b.StridedStream(lineSize, coldWS)
	cold2 := b.StridedStream(lineSize, coldWS)

	init := b.Block("init")
	pyr := b.Block("pyramid")
	pyrEdge := b.Block("pyramid-edge")
	pyrBody := b.Block("pyramid-body")
	pyrLatch := b.Block("pyramid-latch")
	quant := b.Block("quantize")
	quantLatch := b.Block("quantize-latch")
	done := b.Block("done")

	init.Compute(800)
	loads(init, hot, 60)
	init.Jump(pyr)

	// Pyramid: I = 33000; per iteration hot ≈ 54, cold ≈ 0.88 (interior
	// macroblocks stream source pixels; boundary filters reuse the hot set),
	// o ≈ 260, d ≈ 180.
	loads(pyr, hot, 20)
	pyr.Compute(120)
	b.ProbBranch(pyr, pyrEdge, pyrBody, 0.12)

	pyrEdge.Compute(90).DependentCompute(220) // boundary filters cost more
	loads(pyrEdge, hot, 34)
	pyrEdge.Jump(pyrLatch)

	pyrBody.Load(cold)
	pyrBody.Compute(140).DependentCompute(170)
	loads(pyrBody, hot, 34)
	pyrBody.Jump(pyrLatch)

	pyrLatch.DependentCompute(5)
	b.LoopBranch(pyrLatch, pyr, quant, trips(33000, scale))

	// Quantize/encode: I = 16500; hot ≈ 54, cold = 1, o ≈ 220, d ≈ 200.
	loads(quant, hot, 54)
	quant.Load(cold2)
	quant.Compute(220).DependentCompute(200)
	b.LoopBranch(quant, quant, quantLatch, trips(16500, scale))

	quantLatch.Compute(400)
	quantLatch.Jump(done)
	done.Compute(100)
	done.Exit()

	return &Spec{
		Name:          "epic",
		Program:       b.MustFinish(),
		Inputs:        []ir.Input{{Name: "test_image.pgm", Seed: 202}},
		DeadlineFracs: [5]float64{0.036, 0.081, 0.170, 0.529, 0.977},
	}
}

// Gsm builds gsm/encode: a frame loop with a voiced/unvoiced split and
// dependent-computation-heavy long-term prediction.
func Gsm(scale float64) *Spec {
	b := ir.NewBuilder("gsm/encode")
	// 96 KB hot set: its ~3072 cold-start misses plus a rare (p = 0.21)
	// refill path account for the paper's small tinvariant (389 µs) despite
	// the heavy cache-hit traffic.
	hot := b.StridedStream(4, 96<<10)
	cold := b.StridedStream(lineSize, coldWS)

	init := b.Block("init")
	head := b.Block("frame-head")
	voiced := b.Block("voiced")
	unvoiced := b.Block("unvoiced")
	ltp := b.Block("ltp")
	refill := b.Block("refill")
	latch := b.Block("frame-latch")
	done := b.Block("done")

	init.Compute(1500)
	loads(init, hot, 80)
	init.Jump(head)

	// I = 3890; per frame: hot ≈ 1192, cold ≈ 0.21, o ≈ 3440, d ≈ 7568.
	loads(head, hot, 400)
	head.Compute(1200).DependentCompute(2000)
	b.ProbBranch(head, voiced, unvoiced, 0.62)

	loads(voiced, hot, 300)
	voiced.Compute(900).DependentCompute(2300)
	voiced.Jump(ltp)

	loads(unvoiced, hot, 300)
	unvoiced.Compute(800).DependentCompute(2100)
	unvoiced.Jump(ltp)

	loads(ltp, hot, 292)
	ltp.Compute(850).DependentCompute(2200)
	b.ProbBranch(ltp, refill, latch, 0.21)

	refill.Load(cold)
	refill.Compute(30)
	refill.Jump(latch)

	loads(latch, hot, 200)
	latch.Compute(550).DependentCompute(1150)
	b.LoopBranch(latch, head, done, trips(3890, scale))

	done.Compute(500)
	done.Exit()

	return &Spec{
		Name:          "gsm/encode",
		Program:       b.MustFinish(),
		Inputs:        []ir.Input{{Name: "clinton.pcm", Seed: 303}},
		DeadlineFracs: [5]float64{0.026, 0.066, 0.145, 0.545, 0.996},
	}
}

// MpegDecode builds mpeg/decode: a frame loop over a macroblock loop with a
// B-frame path whose frequency depends on the input category (paper
// Section 6.4 / Figure 19). Inputs:
//
//	100b, bbc  — category 1, no B-frames (branch probability 0);
//	flwr, cact — category 2, 2 B-frames between I/P frames (probability ⅓).
func MpegDecode(scale float64) *Spec {
	b := ir.NewBuilder("mpeg/decode")
	hot := b.SequentialStream(hotWS)
	cold := b.StridedStream(lineSize, coldWS)

	init := b.Block("init")
	frame := b.Block("frame-head")
	mc := b.Block("mc-head")
	bframe := b.Block("mc-bframe")
	pframe := b.Block("mc-pframe")
	mcLatch := b.Block("mc-latch")
	idct := b.Block("idct")
	output := b.Block("output")
	frameLatch := b.Block("frame-latch")
	done := b.Block("done")

	init.Compute(3000)
	loads(init, hot, 100)
	init.Jump(frame)

	loads(frame, hot, 60)
	frame.Compute(400)
	frame.Jump(mc)

	// Each frame runs three phases over its macroblocks, so a frame is a
	// sequence of coarse regions the optimizer can pin to different modes,
	// with transitions at phase boundaries (the paper's Table 5 texture).
	// Per-MB totals across the phases: hot ≈ 518, cold = 1, o ≈ 1624,
	// d ≈ 1017 (I = 90 frames × 300 MBs at full scale).
	//
	// Phase 1 — motion compensation: streams the reference frame (the cold
	// miss) and waits on it; memory-bound. The B-frame path (input-category
	// dependent) does bidirectional prediction and costs more.
	loads(mc, hot, 100)
	mc.Load(cold)
	mc.Compute(200).DependentCompute(150)
	bCond := b.ProbBranch(mc, bframe, pframe, 1.0/3)

	loads(bframe, hot, 200)
	bframe.Compute(350).DependentCompute(250)
	bframe.Jump(mcLatch)

	loads(pframe, hot, 167)
	pframe.Compute(300).DependentCompute(217)
	pframe.Jump(mcLatch)

	mbTrips := trips(300, math.Min(1, scale*3))
	frameTrips := trips(int(math.Round(27000*scale))/mbTrips, 1)
	mcLatch.Compute(50).DependentCompute(28)
	b.LoopBranch(mcLatch, mc, idct, mbTrips)

	// Phase 2 — inverse DCT: compute-bound.
	loads(idct, hot, 140)
	idct.Compute(700).DependentCompute(400)
	b.LoopBranch(idct, idct, output, mbTrips)

	// Phase 3 — colour conversion and output: mixed.
	loads(output, hot, 100)
	output.Compute(350).DependentCompute(190)
	b.LoopBranch(output, output, frameLatch, mbTrips)

	frameLatch.Compute(600)
	loads(frameLatch, hot, 40)
	outerCond := b.LoopBranch(frameLatch, frame, done, frameTrips)

	done.Compute(800)
	done.Exit()

	prog := b.MustFinish()
	return &Spec{
		Name:    "mpeg/decode",
		Program: prog,
		Inputs: []ir.Input{
			{Name: "flwr.m2v", Seed: 404},
			{Name: "cact.m2v", Seed: 405, Trips: map[int]int{outerCond: frameTrips * 16 / 15}},
			{Name: "100b.m2v", Seed: 406, Probs: map[int]float64{bCond: 0}},
			{Name: "bbc.m2v", Seed: 407, Probs: map[int]float64{bCond: 0}, Trips: map[int]int{outerCond: frameTrips * 14 / 15}},
		},
		DeadlineFracs: [5]float64{0.024, 0.096, 0.118, 0.382, 1.0},
	}
}

// Mpg123 builds the mp3 decoder: almost pure computation (Table 4 shows a
// near-perfect 1/f runtime scaling), structured as a frame loop with a
// subband-synthesis inner loop.
func Mpg123(scale float64) *Spec {
	b := ir.NewBuilder("mpg123")
	hot := b.SequentialStream(hotWS)
	cold := b.StridedStream(lineSize, coldWS)

	init := b.Block("init")
	frame := b.Block("frame-head")
	granule := b.Block("granule")
	synth := b.Block("synth")
	latch := b.Block("frame-latch")
	done := b.Block("done")

	init.Compute(2000)
	loads(init, hot, 50)
	init.Jump(frame)

	// I = 2000 frames; per frame: hot ≈ 250, cold = 1, o ≈ 9500, d ≈ 7200.
	loads(frame, hot, 80)
	frame.Load(cold)
	frame.Compute(2500).DependentCompute(1200)
	frame.Jump(granule)

	loads(granule, hot, 90)
	granule.Compute(3500).DependentCompute(3000)
	granule.Jump(synth)

	loads(synth, hot, 80)
	synth.Compute(3500).DependentCompute(3000)
	synth.Jump(latch)

	latch.Compute(30)
	b.LoopBranch(latch, frame, done, trips(2000, scale))

	done.Compute(400)
	done.Exit()

	return &Spec{
		Name:          "mpg123",
		Program:       b.MustFinish(),
		Inputs:        []ir.Input{{Name: "track.mp3", Seed: 505}},
		DeadlineFracs: [5]float64{0.005, 0.102, 0.117, 0.417, 0.999},
	}
}

// Ghostscript builds the postscript interpreter: the smallest benchmark,
// with a pronounced memory component that does not scale with frequency
// (Table 4: 2.0 ms at 200 MHz vs 0.74 ms at 800 MHz, a ratio well under 4).
func Ghostscript(scale float64) *Spec {
	b := ir.NewBuilder("ghostscript")
	hot := b.StridedStream(4, 8<<10) // fits L1: only 256 cold lines
	cold := b.StridedStream(lineSize, coldWS)

	init := b.Block("init")
	token := b.Block("token")
	operator := b.Block("operator")
	literal := b.Block("literal")
	latch := b.Block("token-latch")
	done := b.Block("done")

	init.Compute(600)
	loads(init, hot, 30)
	init.Jump(token)

	// I = 2900 tokens; per token: hot ≈ 7, cold = 1, o ≈ 9, d ≈ 75; the
	// dependent chain right after the miss leaves the miss latency exposed.
	loads(token, hot, 3)
	token.Load(cold)
	token.Compute(6).DependentCompute(30)
	b.ProbBranch(token, operator, literal, 0.7)

	loads(operator, hot, 2)
	operator.Compute(4).DependentCompute(45)
	operator.Jump(latch)

	loads(literal, hot, 2)
	literal.Compute(2).DependentCompute(30)
	literal.Jump(latch)

	latch.DependentCompute(4)
	b.LoopBranch(latch, token, done, trips(2900, scale))

	done.Compute(200)
	done.Exit()

	return &Spec{
		Name:          "ghostscript",
		Program:       b.MustFinish(),
		Inputs:        []ir.Input{{Name: "tiger.ps", Seed: 606}},
		DeadlineFracs: [5]float64{0.016, 0.056, 0.206, 0.603, 1.0},
	}
}

// All returns the full six-benchmark suite at the given scale.
func All(scale float64) []*Spec {
	return []*Spec{
		Adpcm(scale),
		Epic(scale),
		Gsm(scale),
		MpegDecode(scale),
		Mpg123(scale),
		Ghostscript(scale),
	}
}

// Table7Suite returns the four benchmarks with Table 7 / Table 1 / Table 6
// rows in the paper: adpcm, epic, gsm, mpeg/decode.
func Table7Suite(scale float64) []*Spec {
	return []*Spec{Adpcm(scale), Epic(scale), Gsm(scale), MpegDecode(scale)}
}
