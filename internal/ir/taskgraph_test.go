package ir

import (
	"strings"
	"testing"
)

func tinyProgram(t *testing.T, name string) *Program {
	t.Helper()
	b := NewBuilder(name)
	blk := b.Block("body")
	blk.Compute(10)
	blk.Exit()
	return b.MustFinish()
}

func diamond(t *testing.T) *TaskGraph {
	t.Helper()
	p := tinyProgram(t, "p")
	mk := func(name string) *Task {
		return &Task{Name: name, Program: p, Input: Input{Name: "in", Seed: 1}}
	}
	return &TaskGraph{
		Name:  "diamond",
		Tasks: []*Task{mk("a"), mk("b"), mk("c"), mk("d")},
		Edges: [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
	}
}

func TestTaskGraphValidateOK(t *testing.T) {
	if err := diamond(t).Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestTaskGraphValidateErrors(t *testing.T) {
	p := tinyProgram(t, "p")
	task := func(name string) *Task { return &Task{Name: name, Program: p} }
	cases := []struct {
		name string
		g    *TaskGraph
		want string
	}{
		{"empty", &TaskGraph{Name: "e"}, "no tasks"},
		{"nil task", &TaskGraph{Name: "n", Tasks: []*Task{nil}}, "is nil"},
		{"unnamed", &TaskGraph{Name: "u", Tasks: []*Task{{Program: p}}}, "no name"},
		{"no program", &TaskGraph{Name: "p", Tasks: []*Task{{Name: "t"}}}, "no program"},
		{"dup name", &TaskGraph{Name: "d", Tasks: []*Task{task("t"), task("t")}}, "duplicate task name"},
		{"neg release", &TaskGraph{Name: "r", Tasks: []*Task{{Name: "t", Program: p, ReleaseUS: -1}}}, "negative release"},
		{"neg deadline", &TaskGraph{Name: "dl", Tasks: []*Task{{Name: "t", Program: p, DeadlineUS: -1}}}, "negative deadline"},
		{"dangling edge", &TaskGraph{Name: "g", Tasks: []*Task{task("t")}, Edges: [][2]int{{0, 3}}}, "out of range"},
		{"self edge", &TaskGraph{Name: "s", Tasks: []*Task{task("t")}, Edges: [][2]int{{0, 0}}}, "self-edge"},
		{"dup edge", &TaskGraph{Name: "de", Tasks: []*Task{task("a"), task("b")}, Edges: [][2]int{{0, 1}, {0, 1}}}, "duplicate edge"},
		{"cycle", &TaskGraph{Name: "c", Tasks: []*Task{task("a"), task("b")}, Edges: [][2]int{{0, 1}, {1, 0}}}, "cycle"},
	}
	for _, tc := range cases {
		err := tc.g.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestTaskGraphValidateMaxTasks(t *testing.T) {
	p := tinyProgram(t, "p")
	g := &TaskGraph{Name: "big"}
	for i := 0; i <= MaxTasks; i++ {
		g.Tasks = append(g.Tasks, &Task{Name: string(rune('a')) + itoa(i), Program: p})
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "max") {
		t.Fatalf("oversized graph accepted: %v", err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestTopoOrderDeterministic(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("topo order %v, want %v", order, want)
		}
	}
}

func TestPredsSuccsSinks(t *testing.T) {
	g := diamond(t)
	preds := g.Preds()
	if len(preds[3]) != 2 || preds[3][0] != 1 || preds[3][1] != 2 {
		t.Fatalf("preds of sink = %v, want [1 2]", preds[3])
	}
	succs := g.Succs()
	if len(succs[0]) != 2 || succs[0][0] != 1 || succs[0][1] != 2 {
		t.Fatalf("succs of source = %v, want [1 2]", succs[0])
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || sinks[0] != 3 {
		t.Fatalf("sinks = %v, want [3]", sinks)
	}
}

func TestSingleTaskGraph(t *testing.T) {
	p := tinyProgram(t, "solo")
	g := SingleTaskGraph(p, Input{Name: "in", Seed: 7})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 1 || g.Tasks[0].Program != p || g.Tasks[0].Input.Name != "in" {
		t.Fatalf("degenerate graph malformed: %+v", g)
	}
}
