package ir

import (
	"fmt"
)

// This file adds the task-graph layer on top of single programs: a Task wraps
// one program/input pair, and a TaskGraph arranges tasks in a precedence DAG
// to be list-scheduled across N cores (packages core and sim supply the
// optimizer and the multi-core simulator). The single-program world of the
// paper is the degenerate 1-task/1-core graph, and every consumer keeps that
// path bit-identical to the pre-task-graph code.

// MaxTasks bounds the number of tasks a TaskGraph may hold. Decoders reject
// larger specs before building per-task structures, so a hostile spec cannot
// make the toolchain allocate per-task simulator state for millions of tasks.
const MaxTasks = 512

// Task is one node of a TaskGraph: a program executed on one input, with an
// optional release time (earliest start) and an optional per-task deadline
// (typically set on sinks; 0 means none beyond the graph deadline).
type Task struct {
	// Name identifies the task in schedules and reports; unique per graph.
	Name    string
	Program *Program
	Input   Input
	// ReleaseUS is the earliest time (µs from graph start) the task may begin.
	ReleaseUS float64
	// DeadlineUS, when positive, bounds this task's finish time (µs from
	// graph start) in addition to any whole-graph makespan deadline.
	DeadlineUS float64
}

// TaskGraph is a precedence DAG of tasks. Edges[i] = [u, v] means task u must
// finish before task v may start (indices into Tasks).
type TaskGraph struct {
	Name  string
	Tasks []*Task
	Edges [][2]int
}

// Validate checks structural invariants: a non-empty task list within
// MaxTasks, named tasks with programs, non-negative release/deadline times,
// in-range edge endpoints, no self-edges or duplicate edges, and acyclicity.
func (g *TaskGraph) Validate() error {
	if g == nil {
		return fmt.Errorf("ir: nil task graph")
	}
	n := len(g.Tasks)
	if n == 0 {
		return fmt.Errorf("ir: task graph %q has no tasks", g.Name)
	}
	if n > MaxTasks {
		return fmt.Errorf("ir: task graph %q has %d tasks (max %d)", g.Name, n, MaxTasks)
	}
	names := make(map[string]bool, n)
	for i, t := range g.Tasks {
		if t == nil {
			return fmt.Errorf("ir: task graph %q: task %d is nil", g.Name, i)
		}
		if t.Name == "" {
			return fmt.Errorf("ir: task graph %q: task %d has no name", g.Name, i)
		}
		if names[t.Name] {
			return fmt.Errorf("ir: task graph %q: duplicate task name %q", g.Name, t.Name)
		}
		names[t.Name] = true
		if t.Program == nil {
			return fmt.Errorf("ir: task graph %q: task %q has no program", g.Name, t.Name)
		}
		if t.ReleaseUS < 0 {
			return fmt.Errorf("ir: task graph %q: task %q has negative release %v", g.Name, t.Name, t.ReleaseUS)
		}
		if t.DeadlineUS < 0 {
			return fmt.Errorf("ir: task graph %q: task %q has negative deadline %v", g.Name, t.Name, t.DeadlineUS)
		}
	}
	seen := make(map[[2]int]bool, len(g.Edges))
	for _, e := range g.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return fmt.Errorf("ir: task graph %q: edge %d→%d out of range (have %d tasks)", g.Name, u, v, n)
		}
		if u == v {
			return fmt.Errorf("ir: task graph %q: self-edge on task %d", g.Name, u)
		}
		if seen[e] {
			return fmt.Errorf("ir: task graph %q: duplicate edge %d→%d", g.Name, u, v)
		}
		seen[e] = true
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a deterministic topological order of the tasks (Kahn's
// algorithm, smallest ready index first) or an error naming a task on a cycle.
func (g *TaskGraph) TopoOrder() ([]int, error) {
	n := len(g.Tasks)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		indeg[e[1]]++
	}
	succs := g.Succs()
	done := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		pick := -1
		for i := 0; i < n; i++ {
			if !done[i] && indeg[i] == 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			for i := 0; i < n; i++ {
				if !done[i] {
					return nil, fmt.Errorf("ir: task graph %q: cycle through task %d (%s)", g.Name, i, g.Tasks[i].Name)
				}
			}
		}
		done[pick] = true
		order = append(order, pick)
		for _, s := range succs[pick] {
			indeg[s]--
		}
	}
	return order, nil
}

// Preds returns, per task, the sorted predecessor task indices.
func (g *TaskGraph) Preds() [][]int {
	preds := make([][]int, len(g.Tasks))
	for _, e := range g.Edges {
		preds[e[1]] = append(preds[e[1]], e[0])
	}
	for i := range preds {
		sortInts(preds[i])
	}
	return preds
}

// Succs returns, per task, the sorted successor task indices.
func (g *TaskGraph) Succs() [][]int {
	succs := make([][]int, len(g.Tasks))
	for _, e := range g.Edges {
		succs[e[0]] = append(succs[e[0]], e[1])
	}
	for i := range succs {
		sortInts(succs[i])
	}
	return succs
}

// Sinks returns the tasks with no successors, in index order.
func (g *TaskGraph) Sinks() []int {
	hasSucc := make([]bool, len(g.Tasks))
	for _, e := range g.Edges {
		hasSucc[e[0]] = true
	}
	var sinks []int
	for i := range g.Tasks {
		if !hasSucc[i] {
			sinks = append(sinks, i)
		}
	}
	return sinks
}

// sortInts is an allocation-free insertion sort for the short adjacency lists
// above (package sort would be fine too; this avoids the interface overhead in
// the simulator's per-run setup).
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SingleTaskGraph wraps one program/input as the degenerate 1-task graph —
// the seam through which the pre-task-graph single-program tooling runs
// unchanged.
func SingleTaskGraph(p *Program, in Input) *TaskGraph {
	return &TaskGraph{
		Name:  p.Name,
		Tasks: []*Task{{Name: p.Name, Program: p, Input: in}},
	}
}
