package ir

import (
	"strings"
	"testing"
)

// simpleLoop builds: entry → loop body (back edge ×trip) → exit.
func simpleLoop(trip int) *Program {
	b := NewBuilder("loop")
	s := b.SequentialStream(1 << 16)
	entry := b.Block("entry")
	body := b.Block("body")
	exit := b.Block("exit")
	entry.Compute(10)
	entry.Jump(body)
	body.Compute(5).Load(s).DependentCompute(3)
	b.LoopBranch(body, body, exit, trip)
	exit.Compute(2)
	exit.Exit()
	return b.MustFinish()
}

func TestBuilderProducesValidProgram(t *testing.T) {
	p := simpleLoop(10)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(p.Blocks))
	}
	if p.Entry() != 0 {
		t.Errorf("entry = %d", p.Entry())
	}
	if len(p.Streams) != 1 {
		t.Errorf("streams = %d", len(p.Streams))
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{
			"no blocks",
			&Program{Name: "x"},
			"no blocks",
		},
		{
			"bad id",
			&Program{Name: "x", Blocks: []*Block{{ID: 5, Term: Exit{}}}},
			"has ID",
		},
		{
			"nil terminator",
			&Program{Name: "x", Blocks: []*Block{{ID: 0}}},
			"no terminator",
		},
		{
			"bad target",
			&Program{Name: "x", Blocks: []*Block{{ID: 0, Term: Jump{To: 7}}}},
			"unknown block",
		},
		{
			"bad stream",
			&Program{Name: "x", Blocks: []*Block{
				{ID: 0, Instrs: []Instr{Load{Stream: 0}}, Term: Exit{}},
			}},
			"unknown stream",
		},
		{
			"zero cycles",
			&Program{Name: "x", Blocks: []*Block{
				{ID: 0, Instrs: []Instr{Compute{Cycles: 0}}, Term: Exit{}},
			}},
			"non-positive cycles",
		},
		{
			"bad trip",
			&Program{Name: "x", Blocks: []*Block{
				{ID: 0, Term: Branch{Cond: LoopCond{ID: 0, Trip: 0}, Taken: 0, Fall: 0}},
			}},
			"trip",
		},
		{
			"bad prob",
			&Program{Name: "x", Blocks: []*Block{
				{ID: 0, Term: Branch{Cond: ProbCond{ID: 0, P: 1.5}, Taken: 0, Fall: 0}},
			}},
			"P=",
		},
		{
			"bad stream def",
			&Program{
				Name:    "x",
				Blocks:  []*Block{{ID: 0, Term: Exit{}}},
				Streams: []Stream{{Stride: 0, WorkingSet: 0}},
			},
			"stream 0 invalid",
		},
	}
	for _, c := range cases {
		err := c.prog.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestInputOverrides(t *testing.T) {
	in := Input{
		Name:  "flwr",
		Seed:  1,
		Probs: map[int]float64{3: 0.25},
		Trips: map[int]int{7: 99},
	}
	if p := in.ProbFor(ProbCond{ID: 3, P: 0.5}); p != 0.25 {
		t.Errorf("ProbFor override = %v", p)
	}
	if p := in.ProbFor(ProbCond{ID: 4, P: 0.5}); p != 0.5 {
		t.Errorf("ProbFor default = %v", p)
	}
	if tr := in.TripFor(LoopCond{ID: 7, Trip: 10}); tr != 99 {
		t.Errorf("TripFor override = %v", tr)
	}
	if tr := in.TripFor(LoopCond{ID: 8, Trip: 10}); tr != 10 {
		t.Errorf("TripFor default = %v", tr)
	}
	empty := Input{Name: "none"}
	if p := empty.ProbFor(ProbCond{ID: 3, P: 0.5}); p != 0.5 {
		t.Errorf("nil-map ProbFor = %v", p)
	}
	if tr := empty.TripFor(LoopCond{ID: 7, Trip: 10}); tr != 10 {
		t.Errorf("nil-map TripFor = %v", tr)
	}
}

func TestBuilderCondIDsUnique(t *testing.T) {
	b := NewBuilder("p")
	x := b.Block("x")
	y := b.Block("y")
	z := b.Block("z")
	x.Compute(1)
	y.Compute(1)
	z.Compute(1)
	id1 := b.ProbBranch(x, y, z, 0.5)
	id2 := b.LoopBranch(y, x, z, 4)
	z.Exit()
	if id1 == id2 {
		t.Errorf("condition IDs collide: %d", id1)
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderStreamsDistinctBases(t *testing.T) {
	b := NewBuilder("p")
	s1 := b.SequentialStream(1024)
	s2 := b.RandomStream(2048)
	s3 := b.StridedStream(64, 4096)
	blk := b.Block("b")
	blk.Load(s1).Load(s2).Store(s3)
	blk.Exit()
	p := b.MustFinish()
	bases := map[uint64]bool{}
	for _, s := range p.Streams {
		if bases[s.Base] {
			t.Fatalf("duplicate stream base %#x", s.Base)
		}
		bases[s.Base] = true
	}
	if !p.Streams[1].Random {
		t.Error("RandomStream not random")
	}
	if p.Streams[2].Stride != 64 {
		t.Errorf("stride = %d", p.Streams[2].Stride)
	}
}

func TestTerminatorTargets(t *testing.T) {
	if got := (Jump{To: 3}).Targets(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Jump.Targets = %v", got)
	}
	br := Branch{Taken: 1, Fall: 2}
	if got := br.Targets(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Branch.Targets = %v", got)
	}
	if got := (Exit{}).Targets(); got != nil {
		t.Errorf("Exit.Targets = %v", got)
	}
}
