// Package ir defines the miniature intermediate representation in which the
// reproduction's workloads are written. A program is a control-flow graph of
// basic blocks; blocks contain abstract instructions (computation chunks,
// loads, stores) and end in a terminator (jump, conditional branch, exit).
//
// The IR is deliberately architecture-neutral: instruction operands are cycle
// weights and memory access streams rather than registers, which is all the
// simulator (package sim), the profiler (package profile) and the DVS
// optimizer (package core) need. It plays the role MediaBench binaries play
// in the original paper.
//
// Input-data dependence — the heart of the paper's multiple-data-category
// experiments (Figure 19) — is expressed through branch conditions whose
// taken-probability and loop trip counts can be overridden per input
// (see Input).
package ir

import (
	"fmt"
)

// Instr is one abstract instruction inside a basic block.
// Implementations: Compute, Load, Store.
type Instr interface {
	isInstr()
}

// Compute models a chunk of ALU/FPU work taking Cycles clock cycles.
// If DependsOnLoad is true, the chunk cannot start until all outstanding
// memory operations have completed (the paper's "dependent" computation);
// otherwise it may overlap with in-flight cache misses (the paper's
// "overlap" computation).
type Compute struct {
	Cycles        int
	DependsOnLoad bool
}

func (Compute) isInstr() {}

// Load models a memory read from access stream Stream.
type Load struct {
	Stream int
}

func (Load) isInstr() {}

// Store models a memory write to access stream Stream.
type Store struct {
	Stream int
}

func (Store) isInstr() {}

// Terminator ends a basic block.
// Implementations: Jump, Branch, Exit.
type Terminator interface {
	isTerm()
	// Targets returns the possible successor block IDs.
	Targets() []int
}

// Jump unconditionally transfers control to block To.
type Jump struct {
	To int
}

func (Jump) isTerm() {}

// Targets returns the jump target.
func (j Jump) Targets() []int { return []int{j.To} }

// Branch transfers control to Taken when Cond evaluates true, else to Fall.
type Branch struct {
	Cond  Cond
	Taken int
	Fall  int
}

func (Branch) isTerm() {}

// Targets returns both branch successors.
func (b Branch) Targets() []int { return []int{b.Taken, b.Fall} }

// Exit terminates the program.
type Exit struct{}

func (Exit) isTerm() {}

// Targets returns nil: an exit has no successors.
func (Exit) Targets() []int { return nil }

// Cond decides a branch direction at run time.
// Implementations: LoopCond, ProbCond.
type Cond interface {
	isCond()
}

// LoopCond implements a counted loop back-edge: it evaluates true (branch
// taken) on the first Trip−1 consecutive evaluations and false on the
// Trip-th, then repeats. Trip counts may be overridden per input; distinct
// loops must use distinct IDs.
type LoopCond struct {
	ID   int
	Trip int
}

func (LoopCond) isCond() {}

// ProbCond evaluates true with probability P, drawn from the input's
// deterministic random source. P may be overridden per input, which is how
// input data categories (e.g. MPEG streams with and without B-frames) steer
// different executions down different paths.
type ProbCond struct {
	ID int
	P  float64
}

func (ProbCond) isCond() {}

// Stream describes a memory access stream. Consecutive accesses advance by
// Stride bytes from Base, wrapping within a working set of WorkingSet bytes.
// If Random is true the accesses are instead uniformly random inside the
// working set (driven by the input's random source), modelling pointer-chasing
// or indexed accesses with poor locality.
type Stream struct {
	Base       uint64
	Stride     int64
	WorkingSet int64
	Random     bool
}

// Block is a basic block: a straight-line instruction list plus a terminator.
type Block struct {
	ID     int
	Name   string
	Instrs []Instr
	Term   Terminator
}

// Program is a complete workload: blocks (entry is Blocks[0]), the memory
// access streams the blocks reference, and a name for reporting.
type Program struct {
	Name    string
	Blocks  []*Block
	Streams []Stream
}

// Entry returns the entry block ID (always 0).
func (p *Program) Entry() int { return 0 }

// Validate checks structural invariants: non-empty, block IDs matching their
// slice positions, every terminator present with in-range targets, every
// referenced stream defined, loop conditions with positive trip counts, and
// probability conditions within [0, 1].
func (p *Program) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("ir: program %q has no blocks", p.Name)
	}
	for i, b := range p.Blocks {
		if b == nil {
			return fmt.Errorf("ir: program %q: block %d is nil", p.Name, i)
		}
		if b.ID != i {
			return fmt.Errorf("ir: program %q: block %d has ID %d", p.Name, i, b.ID)
		}
		if b.Term == nil {
			return fmt.Errorf("ir: program %q: block %d (%s) has no terminator", p.Name, i, b.Name)
		}
		for _, t := range b.Term.Targets() {
			if t < 0 || t >= len(p.Blocks) {
				return fmt.Errorf("ir: program %q: block %d targets unknown block %d", p.Name, i, t)
			}
		}
		for k, in := range b.Instrs {
			switch v := in.(type) {
			case Compute:
				if v.Cycles <= 0 {
					return fmt.Errorf("ir: program %q: block %d instr %d: non-positive cycles", p.Name, i, k)
				}
			case Load:
				if v.Stream < 0 || v.Stream >= len(p.Streams) {
					return fmt.Errorf("ir: program %q: block %d instr %d: unknown stream %d", p.Name, i, k, v.Stream)
				}
			case Store:
				if v.Stream < 0 || v.Stream >= len(p.Streams) {
					return fmt.Errorf("ir: program %q: block %d instr %d: unknown stream %d", p.Name, i, k, v.Stream)
				}
			default:
				return fmt.Errorf("ir: program %q: block %d instr %d: unknown kind %T", p.Name, i, k, in)
			}
		}
		if br, ok := b.Term.(Branch); ok {
			switch c := br.Cond.(type) {
			case LoopCond:
				if c.Trip <= 0 {
					return fmt.Errorf("ir: program %q: block %d: loop %d has trip %d", p.Name, i, c.ID, c.Trip)
				}
			case ProbCond:
				if c.P < 0 || c.P > 1 {
					return fmt.Errorf("ir: program %q: block %d: prob %d has P=%v", p.Name, i, c.ID, c.P)
				}
			default:
				return fmt.Errorf("ir: program %q: block %d: unknown cond %T", p.Name, i, br.Cond)
			}
		}
	}
	for si, s := range p.Streams {
		if s.WorkingSet <= 0 || s.Stride == 0 {
			return fmt.Errorf("ir: program %q: stream %d invalid (ws=%d stride=%d)",
				p.Name, si, s.WorkingSet, s.Stride)
		}
	}
	return nil
}

// Input identifies one input data set for a program: a name, a seed for the
// deterministic random source, and optional per-condition overrides that
// model how different inputs steer execution (probabilities for ProbConds,
// trip counts for LoopConds).
type Input struct {
	Name  string
	Seed  int64
	Probs map[int]float64 // ProbCond.ID → probability override
	Trips map[int]int     // LoopCond.ID → trip override
}

// ProbFor returns the effective probability of cond c under this input.
func (in Input) ProbFor(c ProbCond) float64 {
	if in.Probs != nil {
		if p, ok := in.Probs[c.ID]; ok {
			return p
		}
	}
	return c.P
}

// TripFor returns the effective trip count of cond c under this input.
func (in Input) TripFor(c LoopCond) int {
	if in.Trips != nil {
		if t, ok := in.Trips[c.ID]; ok {
			return t
		}
	}
	return c.Trip
}
