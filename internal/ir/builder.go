package ir

import "fmt"

// Builder assembles a Program incrementally. Create blocks, fill them with
// instructions, wire terminators, then call Finish, which validates the
// result. The builder allocates loop/probability condition IDs so workloads
// don't have to manage uniqueness by hand.
type Builder struct {
	prog     *Program
	nextCond int
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{Name: name}}
}

// Stream registers a memory access stream and returns its index.
func (b *Builder) Stream(s Stream) int {
	b.prog.Streams = append(b.prog.Streams, s)
	return len(b.prog.Streams) - 1
}

// SequentialStream registers a unit-stride sequential stream over a working
// set of ws bytes and returns its index. The base address is chosen so
// distinct streams never alias.
func (b *Builder) SequentialStream(ws int64) int {
	return b.Stream(Stream{Base: b.nextBase(), Stride: 4, WorkingSet: ws})
}

// StridedStream registers a stream with the given stride (bytes) over a
// working set of ws bytes.
func (b *Builder) StridedStream(stride, ws int64) int {
	return b.Stream(Stream{Base: b.nextBase(), Stride: stride, WorkingSet: ws})
}

// RandomStream registers a uniformly random stream over a working set of ws
// bytes.
func (b *Builder) RandomStream(ws int64) int {
	return b.Stream(Stream{Base: b.nextBase(), Stride: 4, WorkingSet: ws, Random: true})
}

// nextBase places each stream in its own 256 MB region so streams never
// share cache sets by accident of layout.
func (b *Builder) nextBase() uint64 {
	return uint64(len(b.prog.Streams)+1) << 28
}

// Block creates an empty basic block with the given name and returns it.
// Blocks receive IDs in creation order; the first block is the entry.
func (b *Builder) Block(name string) *Block {
	blk := &Block{ID: len(b.prog.Blocks), Name: name}
	b.prog.Blocks = append(b.prog.Blocks, blk)
	return blk
}

// Compute appends an overlap-capable computation chunk of n cycles.
func (blk *Block) Compute(n int) *Block {
	blk.Instrs = append(blk.Instrs, Compute{Cycles: n})
	return blk
}

// DependentCompute appends a computation chunk of n cycles that must wait
// for all outstanding memory operations.
func (blk *Block) DependentCompute(n int) *Block {
	blk.Instrs = append(blk.Instrs, Compute{Cycles: n, DependsOnLoad: true})
	return blk
}

// Load appends a load from stream s.
func (blk *Block) Load(s int) *Block {
	blk.Instrs = append(blk.Instrs, Load{Stream: s})
	return blk
}

// Store appends a store to stream s.
func (blk *Block) Store(s int) *Block {
	blk.Instrs = append(blk.Instrs, Store{Stream: s})
	return blk
}

// Jump sets the block's terminator to an unconditional jump.
func (blk *Block) Jump(to *Block) {
	blk.Term = Jump{To: to.ID}
}

// Exit sets the block's terminator to program exit.
func (blk *Block) Exit() {
	blk.Term = Exit{}
}

// LoopBranch gives blk a counted-loop back edge: control returns to head for
// trip−1 consecutive evaluations, then falls through to exit. It returns the
// condition ID so inputs may override the trip count.
func (b *Builder) LoopBranch(blk, head, exit *Block, trip int) int {
	id := b.nextCond
	b.nextCond++
	blk.Term = Branch{Cond: LoopCond{ID: id, Trip: trip}, Taken: head.ID, Fall: exit.ID}
	return id
}

// ProbBranch gives blk a probabilistic branch taken with probability p. It
// returns the condition ID so inputs may override the probability.
func (b *Builder) ProbBranch(blk, taken, fall *Block, p float64) int {
	id := b.nextCond
	b.nextCond++
	blk.Term = Branch{Cond: ProbCond{ID: id, P: p}, Taken: taken.ID, Fall: fall.ID}
	return id
}

// Finish validates and returns the program. The builder must not be used
// afterwards.
func (b *Builder) Finish() (*Program, error) {
	if err := b.prog.Validate(); err != nil {
		return nil, fmt.Errorf("ir: builder: %w", err)
	}
	return b.prog, nil
}

// MustFinish is Finish but panics on error; for statically known-good
// workload constructors.
func (b *Builder) MustFinish() *Program {
	p, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return p
}
