package ir

import (
	"fmt"
	"strings"
)

// Dump renders the program as readable text, one block per paragraph, for
// debugging and for inspecting generated workloads:
//
//	program "adpcm/encode" (6 blocks, 2 streams)
//	stream 0: base=0x10000000 stride=4 ws=131072
//	...
//	block 0 "init":
//	  compute 500
//	  load s0 ×40
//	  jump →1
func (p *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %q (%d blocks, %d streams)\n", p.Name, len(p.Blocks), len(p.Streams))
	for i, s := range p.Streams {
		kind := "strided"
		if s.Random {
			kind = "random"
		}
		fmt.Fprintf(&b, "stream %d: %s base=%#x stride=%d ws=%d\n", i, kind, s.Base, s.Stride, s.WorkingSet)
	}
	for _, blk := range p.Blocks {
		fmt.Fprintf(&b, "block %d %q:\n", blk.ID, blk.Name)
		for _, line := range summarizeInstrs(blk.Instrs) {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		switch t := blk.Term.(type) {
		case Jump:
			fmt.Fprintf(&b, "  jump →%d\n", t.To)
		case Branch:
			switch c := t.Cond.(type) {
			case LoopCond:
				fmt.Fprintf(&b, "  loop#%d trip=%d →%d else →%d\n", c.ID, c.Trip, t.Taken, t.Fall)
			case ProbCond:
				fmt.Fprintf(&b, "  branch#%d p=%.3g →%d else →%d\n", c.ID, c.P, t.Taken, t.Fall)
			}
		case Exit:
			fmt.Fprintf(&b, "  exit\n")
		}
	}
	return b.String()
}

// summarizeInstrs collapses runs of identical instructions ("load s0 ×40")
// so large generated blocks stay readable.
func summarizeInstrs(instrs []Instr) []string {
	var out []string
	for i := 0; i < len(instrs); {
		cur := instrs[i]
		n := 1
		for i+n < len(instrs) && instrs[i+n] == cur {
			n++
		}
		var desc string
		switch v := cur.(type) {
		case Compute:
			if v.DependsOnLoad {
				desc = fmt.Sprintf("dependent-compute %d", v.Cycles)
			} else {
				desc = fmt.Sprintf("compute %d", v.Cycles)
			}
		case Load:
			desc = fmt.Sprintf("load s%d", v.Stream)
		case Store:
			desc = fmt.Sprintf("store s%d", v.Stream)
		}
		if n > 1 {
			desc = fmt.Sprintf("%s ×%d", desc, n)
		}
		out = append(out, desc)
		i += n
	}
	return out
}
