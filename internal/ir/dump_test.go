package ir

import (
	"strings"
	"testing"
)

func TestDump(t *testing.T) {
	b := NewBuilder("demo")
	s := b.SequentialStream(1024)
	r := b.RandomStream(4096)
	x := b.Block("entry")
	y := b.Block("body")
	z := b.Block("exit")
	x.Compute(10).Load(s).Load(s).Load(s)
	x.Jump(y)
	y.Load(r).DependentCompute(5)
	b.LoopBranch(y, y, z, 7)
	z.Store(s)
	z.Exit()
	p := b.MustFinish()

	out := p.Dump()
	for _, want := range []string{
		`program "demo" (3 blocks, 2 streams)`,
		"stream 0: strided",
		"stream 1: random",
		`block 0 "entry":`,
		"compute 10",
		"load s0 ×3", // run-length collapsed
		"jump →1",
		"load s1",
		"dependent-compute 5",
		"loop#0 trip=7 →1 else →2",
		"store s0",
		"exit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpProbBranch(t *testing.T) {
	b := NewBuilder("p")
	x := b.Block("x")
	y := b.Block("y")
	z := b.Block("z")
	x.Compute(1)
	b.ProbBranch(x, y, z, 0.25)
	y.Compute(1)
	y.Exit()
	z.Compute(1)
	z.Exit()
	out := b.MustFinish().Dump()
	if !strings.Contains(out, "branch#0 p=0.25 →1 else →2") {
		t.Errorf("dump missing prob branch:\n%s", out)
	}
}
