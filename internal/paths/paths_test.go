package paths

import (
	"testing"

	"ctdvs/internal/cfg"
	"ctdvs/internal/ir"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
)

// diamond: 0 → (1|2) → 3, exit.
func diamond() *cfg.Graph {
	b := ir.NewBuilder("diamond")
	a := b.Block("a")
	l := b.Block("l")
	r := b.Block("r")
	j := b.Block("j")
	a.Compute(1)
	l.Compute(1)
	r.Compute(1)
	j.Compute(1)
	b.ProbBranch(a, l, r, 0.5)
	l.Jump(j)
	r.Jump(j)
	j.Exit()
	g, err := cfg.FromProgram(b.MustFinish())
	if err != nil {
		panic(err)
	}
	return g
}

func TestDiamondNumbering(t *testing.T) {
	g := diamond()
	n, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	// No back edges in a diamond; two paths from the entry.
	for _, e := range g.Edges {
		if n.IsBackEdge(e) {
			t.Errorf("spurious back edge %v", e)
		}
	}
	if got := n.NumPathsFrom(0); got != 2 {
		t.Errorf("NumPathsFrom(0) = %d, want 2", got)
	}
	// Path IDs 0 and 1 must decode to the two distinct routes.
	seen := map[string]bool{}
	for id := int64(0); id < 2; id++ {
		seq, err := n.Decode(Key{Start: 0, End: 3, ID: id})
		if err != nil {
			t.Fatalf("decode %d: %v", id, err)
		}
		if len(seq) != 3 || seq[0] != 0 || seq[2] != 3 {
			t.Fatalf("decode %d = %v", id, seq)
		}
		seen[string(rune('0'+seq[1]))] = true
	}
	if len(seen) != 2 {
		t.Errorf("paths not distinct: %v", seen)
	}
}

func TestLoopBackEdgeAndTracer(t *testing.T) {
	// 0 → 1 (loop body, self back edge) → 2 exit.
	b := ir.NewBuilder("loop")
	head := b.Block("head")
	body := b.Block("body")
	exit := b.Block("exit")
	head.Compute(1)
	head.Jump(body)
	body.Compute(1)
	b.LoopBranch(body, body, exit, 5)
	exit.Compute(1)
	exit.Exit()
	g, err := cfg.FromProgram(b.MustFinish())
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if !n.IsBackEdge(cfg.Edge{From: 1, To: 1}) {
		t.Error("self loop not classified as back edge")
	}

	// Simulate the edge stream by hand: entry→0, 0→1, (1→1)×4, 1→2, exit.
	tr := n.NewTracer()
	tr.Edge(cfg.Entry, 0)
	tr.Edge(0, 1)
	for i := 0; i < 4; i++ {
		tr.Edge(1, 1)
	}
	tr.Edge(1, 2)
	tr.Finish()

	counts := tr.Counts()
	// Paths: {0→1} once (ended by first back edge), {1} three times
	// (between back edges), {1→2} once (final).
	if got := counts[Key{Start: 0, End: 1, ID: 0}]; got != 1 {
		t.Errorf("prefix path count = %d", got)
	}
	if got := counts[Key{Start: 1, End: 1, ID: 0}]; got != 3 {
		t.Errorf("iteration path count = %d", got)
	}
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total != 5 { // 4 back-edge traversals + 1 final
		t.Errorf("total paths = %d, want 5", total)
	}
}

func TestTracerWithSimulator(t *testing.T) {
	// Wire the tracer to the machine and check global invariants on a
	// branchy benchmark.
	spec := buildBranchy()
	g, err := cfg.FromProgram(spec)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.MustNew(sim.DefaultConfig())
	tr := n.NewTracer()
	m.EdgeHook = tr.Edge
	res, err := m.Run(spec, ir.Input{Name: "in", Seed: 21}, volt.XScale3().Mode(2))
	if err != nil {
		t.Fatal(err)
	}
	m.EdgeHook = nil
	tr.Finish()

	// Total paths = back-edge traversals + 1. EdgeCountsByID follows the
	// graph's edge numbering, so counts pair with g.Edges without map lookups.
	backTraversals := int64(0)
	for id, c := range res.EdgeCountsByID {
		if e := g.Edges[id]; e.From != cfg.Entry && n.IsBackEdge(e) {
			backTraversals += c
		}
	}
	total := int64(0)
	for _, c := range tr.Counts() {
		total += c
	}
	if total != backTraversals+1 {
		t.Errorf("paths = %d, want back traversals %d + 1", total, backTraversals)
	}

	// Every recorded path must decode to a valid forward block sequence.
	for k := range tr.Counts() {
		seq, err := n.Decode(k)
		if err != nil {
			t.Fatalf("decode %+v: %v", k, err)
		}
		for i := 1; i < len(seq); i++ {
			e := cfg.Edge{From: seq[i-1], To: seq[i]}
			if g.EdgeID(e) < 0 || n.IsBackEdge(e) {
				t.Fatalf("decoded path uses invalid edge %v", e)
			}
		}
		if seq[0] != k.Start || seq[len(seq)-1] != k.End {
			t.Fatalf("decoded endpoints wrong: %v for %+v", seq, k)
		}
	}

	// Hot paths are ordered by count and decodable.
	hot, err := Hot(n, tr.Counts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Count > hot[i-1].Count {
			t.Error("hot paths not sorted")
		}
	}
	if len(hot) == 0 || len(hot[0].Blocks) == 0 {
		t.Error("empty hot report")
	}
}

// buildBranchy is a loop with an if/else and a rare sub-branch.
func buildBranchy() *ir.Program {
	b := ir.NewBuilder("branchy")
	head := b.Block("head")
	yes := b.Block("yes")
	rare := b.Block("rare")
	no := b.Block("no")
	latch := b.Block("latch")
	exit := b.Block("exit")
	head.Compute(2)
	b.ProbBranch(head, yes, no, 0.7)
	yes.Compute(3)
	b.ProbBranch(yes, rare, latch, 0.1)
	rare.Compute(9)
	rare.Jump(latch)
	no.Compute(2)
	no.Jump(latch)
	latch.Compute(1)
	b.LoopBranch(latch, head, exit, 400)
	exit.Compute(1)
	exit.Exit()
	return b.MustFinish()
}

func TestDecodeRejectsBogusKey(t *testing.T) {
	g := diamond()
	n, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Decode(Key{Start: 0, End: 3, ID: 99}); err == nil {
		t.Error("bogus id decoded")
	}
	if _, err := n.Decode(Key{Start: 3, End: 0, ID: 0}); err == nil {
		t.Error("reversed endpoints decoded")
	}
}

func TestNestedLoops(t *testing.T) {
	// Nested loops: outer over inner; both back edges detected, tracing
	// consistent.
	b := ir.NewBuilder("nested")
	outer := b.Block("outer")
	inner := b.Block("inner")
	latch := b.Block("latch")
	exit := b.Block("exit")
	outer.Compute(1)
	outer.Jump(inner)
	inner.Compute(1)
	b.LoopBranch(inner, inner, latch, 3)
	latch.Compute(1)
	b.LoopBranch(latch, outer, exit, 4)
	exit.Compute(1)
	exit.Exit()
	prog := b.MustFinish()
	g, err := cfg.FromProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if !n.IsBackEdge(cfg.Edge{From: 1, To: 1}) || !n.IsBackEdge(cfg.Edge{From: 2, To: 0}) {
		t.Error("back edges not found")
	}

	m := sim.MustNew(sim.DefaultConfig())
	tr := n.NewTracer()
	m.EdgeHook = tr.Edge
	res, err := m.Run(prog, ir.Input{Seed: 1}, volt.XScale3().Mode(0))
	if err != nil {
		t.Fatal(err)
	}
	m.EdgeHook = nil
	tr.Finish()
	backTraversals := int64(0)
	for id, c := range res.EdgeCountsByID {
		if e := g.Edges[id]; e.From != cfg.Entry && n.IsBackEdge(e) {
			backTraversals += c
		}
	}
	total := int64(0)
	for _, c := range tr.Counts() {
		total += c
	}
	if total != backTraversals+1 {
		t.Errorf("paths = %d, want %d", total, backTraversals+1)
	}
}
