// Package paths implements Ball–Larus efficient path profiling on the
// control-flow graphs of package cfg. The original paper's future-work
// section (Section 7) proposes moving the DVS formulation "from edges to
// paths" to build more program context into mode-set positioning, citing
// Ball and Larus's path-profiling algorithm; this package provides that
// substrate: acyclic-path numbering, a low-overhead execution tracer that
// plugs into the simulator's EdgeHook, unique path identification, path
// decoding, and hot-path reports.
//
// Path semantics: the CFG's back edges (identified by depth-first search
// from the entry) delimit paths, as in Ball–Larus. A path starts at the
// program entry or at a back edge's target, follows forward (DAG) edges,
// and ends where a back edge is taken or the program exits. Each (start,
// end, id) triple uniquely identifies one acyclic block sequence: the
// Ball–Larus edge increments make the running sum along any two distinct
// forward paths between the same endpoints differ.
package paths

import (
	"fmt"
	"sort"

	"ctdvs/internal/cfg"
)

// Numbering holds the Ball–Larus edge increments for a graph.
type Numbering struct {
	g       *cfg.Graph
	back    []bool  // per edge ID: is a back edge
	inc     []int64 // per edge ID: increment along forward edges
	numFrom []int64 // per block: number of forward paths from the block
}

// New computes the numbering for a graph. Back edges are those reaching a
// block on the depth-first stack (the conventional definition; DFS visits
// successors in terminator order from the entry block).
func New(g *cfg.Graph) (*Numbering, error) {
	n := &Numbering{
		g:       g,
		back:    make([]bool, g.NumEdges()),
		inc:     make([]int64, g.NumEdges()),
		numFrom: make([]int64, g.NumBlocks),
	}

	// Identify back edges with an iterative DFS (color marking).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, g.NumBlocks)
	type frame struct {
		block int
		next  int // next successor index to visit
	}
	stack := []frame{{block: 0}}
	color[0] = gray
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := g.Succs(f.block)
		if f.next >= len(succs) {
			color[f.block] = black
			stack = stack[:len(stack)-1]
			continue
		}
		w := succs[f.next]
		f.next++
		e := g.EdgeID(cfg.Edge{From: f.block, To: w})
		switch color[w] {
		case gray:
			n.back[e] = true
		case white:
			color[w] = gray
			stack = append(stack, frame{block: w})
		}
	}

	// Count forward paths in reverse topological order of the DAG and
	// assign Ball–Larus increments: inc(u→w) = Σ numFrom of w's earlier
	// forward siblings.
	order, err := n.topoOrder()
	if err != nil {
		return nil, err
	}
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		total := int64(0)
		sawForward := false
		acc := int64(0)
		for _, w := range g.Succs(u) {
			e := g.EdgeID(cfg.Edge{From: u, To: w})
			if n.back[e] {
				continue
			}
			sawForward = true
			n.inc[e] = acc
			acc += n.numFrom[w]
			total += n.numFrom[w]
		}
		if !sawForward {
			total = 1 // the path that ends here
		}
		n.numFrom[u] = total
	}
	return n, nil
}

// topoOrder returns a topological order of the forward (non-back) edges.
func (n *Numbering) topoOrder() ([]int, error) {
	g := n.g
	indeg := make([]int, g.NumBlocks)
	for ei, e := range g.Edges {
		if e.From == cfg.Entry || n.back[ei] {
			continue
		}
		indeg[e.To]++
	}
	var queue []int
	for b := 0; b < g.NumBlocks; b++ {
		if indeg[b] == 0 {
			queue = append(queue, b)
		}
	}
	var order []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, w := range g.Succs(u) {
			if n.back[g.EdgeID(cfg.Edge{From: u, To: w})] {
				continue
			}
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != g.NumBlocks {
		return nil, fmt.Errorf("paths: graph is not reducible to a DAG by DFS back edges")
	}
	return order, nil
}

// IsBackEdge reports whether e was classified as a back edge.
func (n *Numbering) IsBackEdge(e cfg.Edge) bool {
	id := n.g.EdgeID(e)
	return id >= 0 && n.back[id]
}

// NumPathsFrom returns the number of forward paths starting at block b.
func (n *Numbering) NumPathsFrom(b int) int64 { return n.numFrom[b] }

// Key uniquely identifies one acyclic path: its start block, end block, and
// Ball–Larus increment sum.
type Key struct {
	Start, End int
	ID         int64
}

// Tracer accumulates path counts from a stream of edge events (wire its
// Edge method to sim.Machine.EdgeHook, then call Finish after the run).
type Tracer struct {
	n      *Numbering
	counts map[Key]int64
	start  int
	cur    int64
	at     int
	live   bool
}

// NewTracer returns a tracer for this numbering.
func (n *Numbering) NewTracer() *Tracer {
	return &Tracer{n: n, counts: make(map[Key]int64)}
}

// Edge consumes one traversal. The virtual entry edge (from == cfg.Entry)
// begins the first path.
func (t *Tracer) Edge(from, to int) {
	if from == cfg.Entry {
		t.start, t.cur, t.at, t.live = to, 0, to, true
		return
	}
	if !t.live {
		// Defensive: events before the entry edge are ignored.
		return
	}
	e := t.n.g.EdgeID(cfg.Edge{From: from, To: to})
	if e < 0 {
		return
	}
	if t.n.back[e] {
		t.counts[Key{Start: t.start, End: from, ID: t.cur}]++
		t.start, t.cur, t.at = to, 0, to
		return
	}
	t.cur += t.n.inc[e]
	t.at = to
}

// Finish records the final (exit-terminated) path. Call exactly once after
// the run completes.
func (t *Tracer) Finish() {
	if t.live {
		t.counts[Key{Start: t.start, End: t.at, ID: t.cur}]++
		t.live = false
	}
}

// Counts returns the accumulated path counts.
func (t *Tracer) Counts() map[Key]int64 { return t.counts }

// Decode reconstructs the block sequence of a path key by depth-first
// search over forward edges matching the increment sum exactly. It returns
// an error for keys that no acyclic path produces.
func (n *Numbering) Decode(k Key) ([]int, error) {
	var walk func(u int, remaining int64, acc []int) []int
	walk = func(u int, remaining int64, acc []int) []int {
		acc = append(acc, u)
		if u == k.End && remaining == 0 {
			out := make([]int, len(acc))
			copy(out, acc)
			return out
		}
		for _, w := range n.g.Succs(u) {
			e := n.g.EdgeID(cfg.Edge{From: u, To: w})
			if n.back[e] || n.inc[e] > remaining {
				continue
			}
			if found := walk(w, remaining-n.inc[e], acc); found != nil {
				return found
			}
		}
		return nil
	}
	seq := walk(k.Start, k.ID, nil)
	if seq == nil {
		return nil, fmt.Errorf("paths: key %+v decodes to no acyclic path", k)
	}
	return seq, nil
}

// HotPath is one entry of a hot-path report.
type HotPath struct {
	Key    Key
	Count  int64
	Blocks []int
}

// Hot returns the k most frequently executed paths, decoded, ordered by
// descending count (ties broken deterministically by key).
func Hot(n *Numbering, counts map[Key]int64, k int) ([]HotPath, error) {
	type kc struct {
		key   Key
		count int64
	}
	all := make([]kc, 0, len(counts))
	for key, c := range counts {
		all = append(all, kc{key, c})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].count != all[b].count {
			return all[a].count > all[b].count
		}
		ka, kb := all[a].key, all[b].key
		if ka.Start != kb.Start {
			return ka.Start < kb.Start
		}
		if ka.End != kb.End {
			return ka.End < kb.End
		}
		return ka.ID < kb.ID
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]HotPath, 0, k)
	for _, e := range all[:k] {
		blocks, err := n.Decode(e.key)
		if err != nil {
			return nil, err
		}
		out = append(out, HotPath{Key: e.key, Count: e.count, Blocks: blocks})
	}
	return out, nil
}
