// Package cfg derives control-flow-graph structure from an ir.Program: the
// edge set, predecessor/successor adjacency, reachability, and the local
// paths (h → i → j block triples) on which the paper's MILP formulation
// charges mode-transition costs (Section 4.2).
//
// Throughout the repository an edge is identified by its (From, To) block
// pair; the virtual program-entry edge is (Entry → block 0) with
// From == Entry (-1), modelling the processor's initial DVS mode before the
// first block executes.
package cfg

import (
	"fmt"
	"sort"

	"ctdvs/internal/ir"
)

// Entry is the pseudo-block ID used as the source of the virtual entry edge.
const Entry = -1

// Edge is a control transfer from block From to block To. From may be Entry.
type Edge struct {
	From, To int
}

// String formats the edge as "h→i".
func (e Edge) String() string {
	if e.From == Entry {
		return fmt.Sprintf("entry→%d", e.To)
	}
	return fmt.Sprintf("%d→%d", e.From, e.To)
}

// Path is a local path through block Mid: entering along (In → Mid) and
// leaving along (Mid → Out). The paper's D_hij counts traversals of these
// triples; transition costs are charged between the two edges' modes.
type Path struct {
	In, Mid, Out int
}

// InEdge returns the entering edge of the path.
func (p Path) InEdge() Edge { return Edge{From: p.In, To: p.Mid} }

// OutEdge returns the leaving edge of the path.
func (p Path) OutEdge() Edge { return Edge{From: p.Mid, To: p.Out} }

// String formats the path as "h→i→j".
func (p Path) String() string {
	if p.In == Entry {
		return fmt.Sprintf("entry→%d→%d", p.Mid, p.Out)
	}
	return fmt.Sprintf("%d→%d→%d", p.In, p.Mid, p.Out)
}

// Graph is the control-flow structure of a program, including the virtual
// entry edge.
type Graph struct {
	// NumBlocks is the number of real blocks.
	NumBlocks int
	// Edges lists all edges (virtual entry edge first), deterministically
	// ordered.
	Edges []Edge
	// Paths lists all local paths (h, i, j): for every block i, every
	// combination of an incoming edge (including the virtual entry edge for
	// block 0) and an outgoing edge.
	Paths []Path

	edgeIndex map[Edge]int
	succs     [][]int
	preds     [][]int
}

// FromProgram builds the Graph of a validated program.
func FromProgram(p *ir.Program) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Blocks)
	g := &Graph{
		NumBlocks: n,
		edgeIndex: make(map[Edge]int),
		succs:     make([][]int, n),
		preds:     make([][]int, n),
	}

	addEdge := func(e Edge) {
		if _, dup := g.edgeIndex[e]; dup {
			return
		}
		g.edgeIndex[e] = len(g.Edges)
		g.Edges = append(g.Edges, e)
		if e.From != Entry {
			g.succs[e.From] = append(g.succs[e.From], e.To)
		}
		g.preds[e.To] = append(g.preds[e.To], e.From)
	}

	addEdge(Edge{From: Entry, To: p.Entry()})
	for _, b := range p.Blocks {
		// A two-target terminator may name the same block twice (a branch
		// where both arms go to one place); the duplicate collapses into a
		// single edge, matching how the simulator counts traversals.
		for _, t := range b.Term.Targets() {
			addEdge(Edge{From: b.ID, To: t})
		}
	}

	// Local paths: per block, incoming × outgoing.
	for i := 0; i < n; i++ {
		preds := g.preds[i]
		succs := g.succs[i]
		for _, h := range preds {
			for _, j := range succs {
				g.Paths = append(g.Paths, Path{In: h, Mid: i, Out: j})
			}
		}
	}
	sort.Slice(g.Paths, func(a, b int) bool {
		pa, pb := g.Paths[a], g.Paths[b]
		if pa.Mid != pb.Mid {
			return pa.Mid < pb.Mid
		}
		if pa.In != pb.In {
			return pa.In < pb.In
		}
		return pa.Out < pb.Out
	})
	return g, nil
}

// EdgeID returns the dense index of edge e, or -1 if the edge does not exist.
func (g *Graph) EdgeID(e Edge) int {
	if i, ok := g.edgeIndex[e]; ok {
		return i
	}
	return -1
}

// NumEdges returns the number of edges including the virtual entry edge.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Succs returns the successor block IDs of block i.
func (g *Graph) Succs(i int) []int { return g.succs[i] }

// Preds returns the predecessor block IDs of block i (Entry included for the
// entry block).
func (g *Graph) Preds(i int) []int { return g.preds[i] }

// Reachable returns the set of blocks reachable from the entry.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, g.NumBlocks)
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succs[b] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// CheckConnected reports an error naming the first unreachable block, if any.
// The MILP formulation assumes every block can execute.
func (g *Graph) CheckConnected() error {
	seen := g.Reachable()
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("cfg: block %d is unreachable from entry", i)
		}
	}
	return nil
}
