package cfg

import (
	"testing"

	"ctdvs/internal/ir"
)

// diamond builds: a → (b|c) → d → exit-ish structure:
//
//	0: entry, prob branch to 1 or 2
//	1: then, jump 3
//	2: else, jump 3
//	3: join, exit
func diamond() *ir.Program {
	b := ir.NewBuilder("diamond")
	a := b.Block("a")
	then := b.Block("then")
	els := b.Block("else")
	join := b.Block("join")
	a.Compute(1)
	then.Compute(1)
	els.Compute(1)
	join.Compute(1)
	b.ProbBranch(a, then, els, 0.5)
	then.Jump(join)
	els.Jump(join)
	join.Exit()
	return b.MustFinish()
}

func TestFromProgramDiamond(t *testing.T) {
	g, err := FromProgram(diamond())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumBlocks != 4 {
		t.Fatalf("blocks = %d", g.NumBlocks)
	}
	// Edges: entry→0, 0→1, 0→2, 1→3, 2→3.
	if g.NumEdges() != 5 {
		t.Fatalf("edges = %d, want 5: %v", g.NumEdges(), g.Edges)
	}
	if g.Edges[0] != (Edge{From: Entry, To: 0}) {
		t.Errorf("first edge = %v, want virtual entry", g.Edges[0])
	}
	if g.EdgeID(Edge{From: 0, To: 1}) < 0 || g.EdgeID(Edge{From: 2, To: 3}) < 0 {
		t.Error("expected edges missing")
	}
	if g.EdgeID(Edge{From: 1, To: 2}) != -1 {
		t.Error("phantom edge present")
	}
	// Local paths: block 0 has in {entry} × out {1,2} = 2;
	// block 1: in {0} × out {3} = 1; block 2: 1; block 3: in {1,2} × out {} = 0.
	if len(g.Paths) != 4 {
		t.Fatalf("paths = %d, want 4: %v", len(g.Paths), g.Paths)
	}
	if err := g.CheckConnected(); err != nil {
		t.Error(err)
	}
}

func TestPathsEdges(t *testing.T) {
	g, err := FromProgram(diamond())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range g.Paths {
		if g.EdgeID(p.InEdge()) < 0 {
			t.Errorf("path %v: in edge missing", p)
		}
		if g.EdgeID(p.OutEdge()) < 0 {
			t.Errorf("path %v: out edge missing", p)
		}
	}
}

func TestLoopGraph(t *testing.T) {
	b := ir.NewBuilder("loop")
	head := b.Block("head")
	exit := b.Block("exit")
	head.Compute(1)
	b.LoopBranch(head, head, exit, 5)
	exit.Compute(1)
	exit.Exit()
	p := b.MustFinish()
	g, err := FromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	// Edges: entry→0, 0→0 (back), 0→1.
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d: %v", g.NumEdges(), g.Edges)
	}
	// Self-loop paths: block 0 in {entry, 0} × out {0, 1} = 4.
	// Block 1 has no successors.
	if len(g.Paths) != 4 {
		t.Fatalf("paths = %d: %v", len(g.Paths), g.Paths)
	}
}

func TestBothArmsSameTargetCollapse(t *testing.T) {
	b := ir.NewBuilder("same")
	x := b.Block("x")
	y := b.Block("y")
	x.Compute(1)
	b.ProbBranch(x, y, y, 0.5) // both arms to y
	y.Compute(1)
	y.Exit()
	g, err := FromProgram(b.MustFinish())
	if err != nil {
		t.Fatal(err)
	}
	// entry→0, 0→1 only (duplicate collapsed).
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d: %v", g.NumEdges(), g.Edges)
	}
}

func TestUnreachableBlockDetected(t *testing.T) {
	b := ir.NewBuilder("dead")
	x := b.Block("x")
	dead := b.Block("dead")
	x.Compute(1)
	x.Exit()
	dead.Compute(1)
	dead.Exit()
	g, err := FromProgram(b.MustFinish())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckConnected(); err == nil {
		t.Error("unreachable block not detected")
	}
	r := g.Reachable()
	if !r[0] || r[1] {
		t.Errorf("reachable = %v", r)
	}
}

func TestInvalidProgramRejected(t *testing.T) {
	p := &ir.Program{Name: "bad"}
	if _, err := FromProgram(p); err == nil {
		t.Error("expected validation error")
	}
}

func TestEdgeAndPathStrings(t *testing.T) {
	if s := (Edge{From: Entry, To: 0}).String(); s != "entry→0" {
		t.Errorf("entry edge string = %q", s)
	}
	if s := (Edge{From: 2, To: 5}).String(); s != "2→5" {
		t.Errorf("edge string = %q", s)
	}
	if s := (Path{In: Entry, Mid: 0, Out: 1}).String(); s != "entry→0→1" {
		t.Errorf("path string = %q", s)
	}
	if s := (Path{In: 1, Mid: 2, Out: 3}).String(); s != "1→2→3" {
		t.Errorf("path string = %q", s)
	}
}

func TestSuccsPreds(t *testing.T) {
	g, err := FromProgram(diamond())
	if err != nil {
		t.Fatal(err)
	}
	if s := g.Succs(0); len(s) != 2 {
		t.Errorf("Succs(0) = %v", s)
	}
	if p := g.Preds(3); len(p) != 2 {
		t.Errorf("Preds(3) = %v", p)
	}
	if p := g.Preds(0); len(p) != 1 || p[0] != Entry {
		t.Errorf("Preds(0) = %v", p)
	}
}
