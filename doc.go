// Package ctdvs is a from-scratch Go reproduction of Xie, Martonosi and
// Malik, "Compile-Time Dynamic Voltage Scaling Settings: Opportunities and
// Limits" (PLDI 2003): an analytical model bounding the energy savings of
// compile-time intra-program DVS, and a profile-driven MILP optimizer that
// places mode-set instructions on control-flow edges, together with every
// substrate the evaluation needs (a cycle-level CPU/cache/power simulator, a
// simplex LP solver and branch-and-bound MILP solver, a mini-IR with a
// synthetic MediaBench workload suite, and an experiment harness that
// regenerates every table and figure of the paper).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for recorded paper-versus-measured
// results. The benchmarks in bench_test.go regenerate each table/figure;
// cmd/dvs-bench prints them.
package ctdvs
