module ctdvs

go 1.22
