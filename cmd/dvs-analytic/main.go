// Command dvs-analytic explores the paper's Section 3 analytical model for a
// single parameter set: it reports the continuous-voltage optimum, the
// discrete optimum for 3/7/13 voltage levels, the single-frequency baselines,
// and the resulting energy-saving ratios. The rendered report is itself a
// pipeline artifact keyed by the parameter set, so with -cache-dir a repeated
// invocation is a pure cache read.
//
// Usage:
//
//	dvs-analytic -noverlap 4e6 -ndependent 5.8e6 -ncache 3e5 \
//	             -tinvariant 8000 -deadline 16000
//
// Cycle counts are CPU cycles; times are microseconds.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"

	"ctdvs/cmd/internal/cli"
	"ctdvs/internal/analytic"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/volt"
)

// kindAnalytic caches rendered reports alongside the simulator/solver stages.
const kindAnalytic = pipeline.Kind("analytic")

var reportStage = pipeline.Stage[string]{
	Kind:   kindAnalytic,
	Encode: func(s string) ([]byte, error) { return json.Marshal(s) },
	Decode: func(data []byte) (string, error) {
		var s string
		err := json.Unmarshal(data, &s)
		return s, err
	},
}

func main() {
	app := cli.New("dvs-analytic")
	nOverlap := flag.Float64("noverlap", 4e6, "overlap computation cycles")
	nDependent := flag.Float64("ndependent", 5.8e6, "dependent computation cycles")
	nCache := flag.Float64("ncache", 3e5, "cache-hit memory cycles")
	tInvariant := flag.Float64("tinvariant", 8000, "cache-miss service time (µs)")
	deadline := flag.Float64("deadline", 16000, "deadline (µs)")
	vLo := flag.Float64("vlo", 0.7, "continuous range low voltage (V)")
	vHi := flag.Float64("vhi", 1.65, "continuous range high voltage (V)")
	app.Parse()

	p := analytic.Params{
		NOverlap:   *nOverlap,
		NDependent: *nDependent,
		NCache:     *nCache,
		TInvariant: *tInvariant,
		DeadlineUS: *deadline,
	}
	if err := p.Validate(); err != nil {
		app.Die(err)
	}
	vr := analytic.VRange{Lo: *vLo, Hi: *vHi, Scaling: volt.DefaultScaling()}

	key := pipeline.NewKey(kindAnalytic).
		// Report layout version: bump when report() gains sections, so cached
		// renders from older binaries are not replayed as-is.
		Int("v", 2).
		Float("noverlap", p.NOverlap).
		Float("ndependent", p.NDependent).
		Float("ncache", p.NCache).
		Float("tinvariant", p.TInvariant).
		Float("deadline", p.DeadlineUS).
		Float("vlo", vr.Lo).
		Float("vhi", vr.Hi).
		Sum()
	out, err := pipeline.Run(app.Runner(), reportStage, key, func() (string, error) {
		return report(p, vr)
	})
	if err != nil {
		app.Die(err)
	}
	fmt.Print(out)
	app.Close()
}

// report renders the full analysis for one parameter set.
func report(p analytic.Params, vr analytic.VRange) (string, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, "parameters: Noverlap=%.0f Ndependent=%.0f Ncache=%.0f cycles, tinvariant=%.1fµs, deadline=%.1fµs\n",
		p.NOverlap, p.NDependent, p.NCache, p.TInvariant, p.DeadlineUS)
	fmt.Fprintf(&b, "derived:    f_invariant=%.1f MHz, f_ideal=%.1f MHz, T(f_max)=%.1f µs\n\n",
		p.FInvariant(), p.FIdeal(), p.ExecTimeUS(vr.FHi()))

	// Continuous case.
	bv, bf, be, err := analytic.BaselineContinuous(p, vr)
	if err != nil {
		return "", fmt.Errorf("continuous baseline: %w", err)
	}
	sol, err := analytic.OptimizeContinuous(p, vr)
	if err != nil {
		return "", fmt.Errorf("continuous optimum: %w", err)
	}
	save, _ := analytic.SavingsContinuous(p, vr)
	fmt.Fprintf(&b, "continuous [%.2fV..%.2fV]:\n", vr.Lo, vr.Hi)
	fmt.Fprintf(&b, "  baseline: v=%.3fV f=%.1fMHz E=%.4g V²·cycles\n", bv, bf, be)
	fmt.Fprintf(&b, "  optimum:  v1=%.3fV (f1=%.1fMHz) v2=%.3fV (f2=%.1fMHz) E=%.4g (%s)\n",
		sol.V1, sol.F1, sol.V2, sol.F2, sol.EnergyVC, sol.Case)
	fmt.Fprintf(&b, "  energy-saving ratio: %.4f\n\n", save)

	// Exact continuous schedule (Li–Yao–Yuan over the two-phase job encoding).
	// This is the middle rung of the rigor ladder: the aggregate closed form
	// relaxes the release windows entirely, the exact solution honors them,
	// and any discrete schedule drawn from modes on the scaling curve can only
	// cost more — closed-form ≤ exact-continuous ≤ discrete. (The published
	// XScale table rounds its bottom mode above the curve — 179.3 MHz printed
	// as 200 MHz at 0.70 V — so that table can undercut the continuous bound
	// at lax deadlines; the chain is exact for volt.Uniform sets, which
	// Levels(7) and Levels(13) are.)
	jobs := analytic.TwoPhaseJobs(p)
	exact, err := analytic.OptimizeContinuousExact(jobs, vr)
	if err != nil {
		return "", fmt.Errorf("exact continuous: %w", err)
	}
	agg, err := analytic.AggregateClosedForm(jobs, vr)
	if err != nil {
		return "", fmt.Errorf("aggregate closed form: %w", err)
	}
	fmt.Fprintf(&b, "exact continuous (Li–Yao–Yuan, %d jobs):\n", len(jobs))
	fmt.Fprintf(&b, "  aggregate closed-form bound: E=%.4g V²·cycles\n", agg.EnergyVC)
	fmt.Fprintf(&b, "  exact optimum: E=%.4g V²·cycles, %d critical intervals\n",
		exact.EnergyVC, len(exact.Intervals))
	for _, iv := range exact.Intervals {
		fmt.Fprintf(&b, "    [%.1f..%.1f µs] at %.1f MHz (%d jobs)\n",
			iv.StartUS, iv.EndUS, iv.FreqMHz, len(iv.Jobs))
	}
	b.WriteByte('\n')

	// Discrete cases.
	for _, levels := range []int{3, 7, 13} {
		ms, err := volt.Levels(levels)
		if err != nil {
			return "", err
		}
		mode, baseE, ok := analytic.BaselineDiscrete(p, ms)
		if !ok {
			fmt.Fprintf(&b, "discrete %2d levels: deadline infeasible even at %v\n", levels, ms.Max())
			continue
		}
		dsol, err := analytic.OptimizeDiscrete(p, ms)
		if err != nil {
			return "", fmt.Errorf("discrete %d levels: %w", levels, err)
		}
		s, _ := analytic.SavingsDiscrete(p, ms)
		fmt.Fprintf(&b, "discrete %2d levels: baseline %v (E=%.4g), optimum E=%.4g, savings %.4f, modes used %d\n",
			levels, ms.Mode(mode), baseE, dsol.EnergyVC, s, dsol.ModesUsed)
		for m := 0; m < ms.Len(); m++ {
			if dsol.X[m] > 1 || dsol.Y[m] > 1 {
				fmt.Fprintf(&b, "    %v: overlap %.0f cycles (cache %.0f), dependent %.0f cycles\n",
					ms.Mode(m), dsol.X[m], dsol.XC[m], dsol.Y[m])
			}
		}
	}
	return b.String(), nil
}
