// Command dvs-cache inspects and garbage-collects the artifact store the
// other dvs-* tools share. Without -budget it reports the store's on-disk
// footprint per artifact kind; with -budget it runs Store.Compact, evicting
// stale temp files, JSON duplicates of binary artifacts, and then
// least-recently-used artifacts until the store fits the budget. Eviction is
// unlink-based and safe while other processes read (or serve from) the same
// store: a reader holding an artifact open keeps it readable, a reader that
// misses recomputes.
//
// Usage:
//
//	dvs-cache -cache-dir .dvs-cache                  # footprint report
//	dvs-cache -cache-dir .dvs-cache -budget 256MiB   # compact to 256 MiB
//	dvs-cache -cache-dir .dvs-cache -budget 1GiB -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ctdvs/internal/pipeline"
)

func main() {
	dir := flag.String("cache-dir", "", "artifact cache directory (required)")
	budget := flag.String("budget", "", "size budget to compact to, e.g. 500000000, 256MiB, 2GiB (empty = report only)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "dvs-cache: %v\n", err)
		os.Exit(1)
	}
	if *dir == "" {
		die(fmt.Errorf("-cache-dir is required"))
	}
	store, err := pipeline.Open(*dir)
	if err != nil {
		die(err)
	}

	var compacted *pipeline.CompactStats
	if *budget != "" {
		bytes, err := parseSize(*budget)
		if err != nil {
			die(err)
		}
		cs, err := store.Compact(bytes)
		if err != nil {
			die(err)
		}
		compacted = &cs
	}
	ds, err := store.DiskStats()
	if err != nil {
		die(err)
	}

	if *jsonOut {
		out := struct {
			Dir     string                 `json:"dir"`
			Store   pipeline.DiskStats     `json:"store"`
			Compact *pipeline.CompactStats `json:"compact,omitempty"`
		}{Dir: store.Dir(), Store: ds, Compact: compacted}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			die(err)
		}
		return
	}

	fmt.Printf("store %s: %d artifact(s), %s\n", store.Dir(), ds.TotalArtifacts, fmtSize(ds.TotalBytes))
	kinds := make([]string, 0, len(ds.Kinds))
	for k := range ds.Kinds {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		ks := ds.Kinds[pipeline.Kind(k)]
		fmt.Printf("  %-10s %6d artifact(s)  %s\n", k, ks.Artifacts, fmtSize(ks.Bytes))
	}
	if compacted != nil {
		fmt.Printf("compacted to budget %s: %s -> %s (evicted %d artifact(s), %s; %d JSON twin(s), %d stale temp(s))\n",
			fmtSize(compacted.BudgetBytes), fmtSize(compacted.BytesBefore), fmtSize(compacted.BytesAfter),
			compacted.EvictedArtifacts, fmtSize(compacted.EvictedBytes),
			compacted.EvictedJSONTwins, compacted.RemovedTemps)
	}
}

// parseSize parses a byte count with an optional binary or decimal suffix:
// "1048576", "256KiB", "1.5GiB", "2GB", "512M".
func parseSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(t)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30}, {"TIB", 1 << 40},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"TB", 1e12},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"T", 1 << 40},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.mult
			t = strings.TrimSpace(t[:len(t)-len(suf.name)])
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// fmtSize renders bytes with a binary suffix, one decimal.
func fmtSize(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGT"[exp])
}
