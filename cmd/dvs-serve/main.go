// Command dvs-serve runs the DVS optimizer as an HTTP/JSON service. POST a
// request to /optimize and it flows through the same content-addressed
// pipeline the CLI tools use: with -cache-dir, a schedule solved once — by
// this server, by a previous server, or by dvs-opt — is never solved again.
// Identical concurrent requests coalesce onto one execution, the worker pool
// and queue bound concurrent load (excess gets 429 + Retry-After), and
// SIGTERM/SIGINT drains in-flight requests before exiting.
//
// Usage:
//
//	dvs-serve -addr :8080 -cache-dir .dvs-cache
//	dvs-serve -addr :8080 -serve-workers 4 -queue 32 -request-timeout 30s
//
// Endpoints:
//
//	POST /optimize  {"bench":"gsm/encode","deadline":3,"levels":3,...}
//	GET  /healthz   liveness (503 while draining)
//	GET  /statsz    counters, queue occupancy, latency percentiles, cache stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ctdvs/cmd/internal/cli"
	"ctdvs/internal/serve"
)

func main() {
	app := cli.New("dvs-serve")
	app.ScaleFlag()
	app.SolveFlags()
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("serve-workers", 0, "concurrent optimizations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 16, "requests allowed to wait for a worker before 429")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request wall-time limit (0 = none; requests may override with timeout_ms)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
	storeBudget := flag.Int64("store-budget-bytes", 0, "compact the artifact store to this size periodically, evicting LRU artifacts (0 = never; see dvs-cache for offline compaction)")
	compactEvery := flag.Duration("compact-interval", time.Minute, "cadence of the store compaction pass when -store-budget-bytes is set")
	app.Parse()

	srv := serve.New(app.Config(), serve.Options{
		Workers:          *workers,
		QueueDepth:       *queue,
		SolveLimit:       app.SolveLimit,
		SolveWorkers:     app.Workers,
		RequestTimeout:   *reqTimeout,
		RetryAfter:       *retryAfter,
		StoreBudgetBytes: *storeBudget,
		CompactInterval:  *compactEvery,
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// SIGTERM/SIGINT starts the drain: stop admitting work, let in-flight
	// requests finish and answer their clients, then close the listener.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dvs-serve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		app.Die(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "dvs-serve: draining")
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		app.Die(err)
	}
	app.Close()
}
