// Command dvs-sim executes a saved DVS schedule (produced by dvs-opt -save)
// on the simulator, closing the toolchain loop: profile → optimize →
// schedule file → execute. Running with a different input than the one the
// schedule was optimized for reproduces the paper's cross-input experiments
// (Section 6.4) from the command line. With -cache-dir, the execution is the
// pipeline's validate stage: a schedule dvs-opt or dvs-bench already measured
// is reported without re-simulating.
//
// Usage:
//
//	dvs-opt -bench mpeg/decode -deadline 3 -save sched.json
//	dvs-sim -schedule sched.json -input 2
package main

import (
	"flag"
	"fmt"
	"os"

	"ctdvs/cmd/internal/cli"
	"ctdvs/internal/schedfile"
)

func main() {
	app := cli.New("dvs-sim")
	app.ScaleFlag()
	schedPath := flag.String("schedule", "", "schedule file written by dvs-opt -save")
	input := flag.Int("input", 0, "input index to execute")
	deadlineUS := flag.Float64("deadline-us", 0, "optional deadline to check the run against (µs)")
	app.Parse()

	if *schedPath == "" {
		app.Dief("-schedule is required")
	}
	f, err := os.Open(*schedPath)
	if err != nil {
		app.Die(err)
	}
	defer f.Close()
	program, sched, err := schedfile.Load(f)
	if err != nil {
		app.Die(err)
	}

	cfg := app.Config()
	if _, err := cfg.Spec(program); err != nil {
		app.Dief("schedule targets unknown benchmark %q", program)
	}
	pr, err := cfg.Profile(program, *input, 3)
	if err != nil {
		app.Die(err)
	}
	res, err := cfg.RunSchedule(pr, sched)
	if err != nil {
		app.Die(err)
	}

	fmt.Printf("%s input %q under %s:\n", program, pr.Input.Name, *schedPath)
	fmt.Printf("  time   %.1f µs\n", res.TimeUS)
	fmt.Printf("  energy %.1f µJ (%.2f µJ in %d mode switches)\n",
		res.EnergyUJ, res.TransitionEnergyUJ, res.Transitions)
	app.Close()
	if *deadlineUS > 0 {
		ok := res.TimeUS <= *deadlineUS
		fmt.Printf("  deadline %.1f µs: met=%v (slack %.1f µs)\n",
			*deadlineUS, ok, *deadlineUS-res.TimeUS)
		if !ok {
			os.Exit(2)
		}
	}
}
