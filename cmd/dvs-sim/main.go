// Command dvs-sim executes a saved DVS schedule (produced by dvs-opt -save)
// on the simulator, closing the toolchain loop: profile → optimize →
// schedule file → execute. Running with a different input than the one the
// schedule was optimized for reproduces the paper's cross-input experiments
// (Section 6.4) from the command line.
//
// Usage:
//
//	dvs-opt -bench mpeg/decode -deadline 3 -save sched.json
//	dvs-sim -schedule sched.json -input 2
package main

import (
	"flag"
	"fmt"
	"os"

	"ctdvs/internal/schedfile"
	"ctdvs/internal/sim"
	"ctdvs/internal/workloads"
)

func main() {
	schedPath := flag.String("schedule", "", "schedule file written by dvs-opt -save")
	input := flag.Int("input", 0, "input index to execute")
	scale := flag.Float64("scale", 1.0, "workload scale (must match the profiling scale)")
	deadlineUS := flag.Float64("deadline-us", 0, "optional deadline to check the run against (µs)")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "dvs-sim:", err)
		os.Exit(1)
	}
	if *schedPath == "" {
		die(fmt.Errorf("-schedule is required"))
	}
	f, err := os.Open(*schedPath)
	if err != nil {
		die(err)
	}
	defer f.Close()
	program, sched, err := schedfile.Load(f)
	if err != nil {
		die(err)
	}

	var spec *workloads.Spec
	for _, s := range workloads.All(*scale) {
		if s.Name == program {
			spec = s
		}
	}
	if spec == nil {
		die(fmt.Errorf("schedule targets unknown benchmark %q", program))
	}
	if *input < 0 || *input >= len(spec.Inputs) {
		die(fmt.Errorf("%s has inputs 0..%d", program, len(spec.Inputs)-1))
	}

	m := sim.MustNew(sim.DefaultConfig())
	res, err := m.RunDVS(spec.Program, spec.Inputs[*input], sched)
	if err != nil {
		die(err)
	}

	fmt.Printf("%s input %q under %s:\n", program, spec.Inputs[*input].Name, *schedPath)
	fmt.Printf("  time   %.1f µs\n", res.TimeUS)
	fmt.Printf("  energy %.1f µJ (%.2f µJ in %d mode switches)\n",
		res.EnergyUJ, res.TransitionEnergyUJ, res.Transitions)
	if *deadlineUS > 0 {
		ok := res.TimeUS <= *deadlineUS
		fmt.Printf("  deadline %.1f µs: met=%v (slack %.1f µs)\n",
			*deadlineUS, ok, *deadlineUS-res.TimeUS)
		if !ok {
			os.Exit(2)
		}
	}
}
