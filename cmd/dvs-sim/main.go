// Command dvs-sim executes a saved DVS schedule (produced by dvs-opt -save)
// on the simulator, closing the toolchain loop: profile → optimize →
// schedule file → execute. Running with a different input than the one the
// schedule was optimized for reproduces the paper's cross-input experiments
// (Section 6.4) from the command line. With -cache-dir, the execution is the
// pipeline's validate stage: a schedule dvs-opt or dvs-bench already measured
// is reported without re-simulating.
//
// Usage:
//
//	dvs-opt -bench mpeg/decode -deadline 3 -save sched.json
//	dvs-sim -schedule sched.json -input 2
//
// Graph mode executes a task-graph spec (written by dvs-opt -save-graph):
// the placement and mode assignment resolve from the shared artifact cache
// when dvs-opt already solved them, and both the static schedule and the
// slack-reclaiming governed run are reported:
//
//	dvs-opt -task-graph mpi-mix -cache-dir .dvs-cache -save-graph graph.json
//	dvs-sim -graph graph.json -cache-dir .dvs-cache
package main

import (
	"flag"
	"fmt"
	"os"

	"ctdvs/cmd/internal/cli"
	"ctdvs/internal/core"
	"ctdvs/internal/milp"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/volt"
)

func main() {
	app := cli.New("dvs-sim")
	app.ScaleFlag()
	app.SolveFlags()
	schedPath := flag.String("schedule", "", "schedule file written by dvs-opt -save")
	graphPath := flag.String("graph", "", "task-graph spec file written by dvs-opt -save-graph")
	input := flag.Int("input", 0, "input index to execute")
	deadlineUS := flag.Float64("deadline-us", 0, "optional deadline to check the run against (µs)")
	app.Parse()

	if *graphPath != "" {
		if *schedPath != "" {
			app.Dief("-schedule and -graph are mutually exclusive")
		}
		code := runGraph(app, *graphPath, *deadlineUS)
		app.Close()
		os.Exit(code)
	}
	if *schedPath == "" {
		app.Dief("-schedule or -graph is required")
	}
	f, err := os.Open(*schedPath)
	if err != nil {
		app.Die(err)
	}
	defer f.Close()
	program, sched, err := schedfile.Load(f)
	if err != nil {
		app.Die(err)
	}

	cfg := app.Config()
	if _, err := cfg.Spec(program); err != nil {
		app.Dief("schedule targets unknown benchmark %q", program)
	}
	pr, err := cfg.Profile(program, *input, 3)
	if err != nil {
		app.Die(err)
	}
	res, err := cfg.RunSchedule(pr, sched)
	if err != nil {
		app.Die(err)
	}

	fmt.Printf("%s input %q under %s:\n", program, pr.Input.Name, *schedPath)
	fmt.Printf("  time   %.1f µs\n", res.TimeUS)
	fmt.Printf("  energy %.1f µJ (%.2f µJ in %d mode switches)\n",
		res.EnergyUJ, res.TransitionEnergyUJ, res.Transitions)
	app.Close()
	if *deadlineUS > 0 {
		ok := res.TimeUS <= *deadlineUS
		fmt.Printf("  deadline %.1f µs: met=%v (slack %.1f µs)\n",
			*deadlineUS, ok, *deadlineUS-res.TimeUS)
		if !ok {
			os.Exit(2)
		}
	}
}

// runGraph executes a task-graph spec: solve (or load) the multi-core
// schedule, run it statically, then run it under the slack-reclaiming
// governor. Returns the process exit code (2 when a deadline is missed).
func runGraph(app *cli.App, path string, deadlineUS float64) int {
	f, err := os.Open(path)
	if err != nil {
		app.Die(err)
	}
	gf, err := schedfile.LoadGraphSpec(f)
	f.Close()
	if err != nil {
		app.Die(err)
	}
	gs, err := gf.Spec()
	if err != nil {
		app.Die(err)
	}
	dl := deadlineUS
	if dl == 0 {
		dl = gf.DeadlineUS
	}

	cfg := app.Config()
	gw, err := cfg.BuildGraph(gs, 3, dl)
	if err != nil {
		app.Die(err)
	}
	// The same options dvs-opt's task-graph mode uses by default, so the
	// solve resolves from the shared artifact cache instead of re-running.
	opts := &core.Options{
		Regulator: volt.DefaultRegulator(),
		MILP:      &milp.Options{TimeLimit: app.SolveLimit, Workers: app.Workers},
	}
	res, err := cfg.OptimizeGraph(gw, opts)
	if err != nil {
		app.Die(err)
	}
	static, err := cfg.SimulateGraph(gw, res.Schedule)
	if err != nil {
		app.Die(err)
	}

	fmt.Printf("%s: %d tasks on %d cores under %s, deadline %.1f µs\n",
		gs.Name, len(gw.Graph.Tasks), gw.Cores, path, gw.DeadlineUS)
	for _, run := range static.Runs {
		fmt.Printf("  %-18s core %d  %-14s %10.1f → %10.1f µs  %10.1f µJ\n",
			run.Name, run.Core, res.Schedule.Modes.Mode(run.Mode).String(),
			run.StartUS, run.FinishUS, run.EnergyUJ)
	}
	tol := gw.DeadlineUS * (1 + 1e-9)
	staticOK := static.MissedDeadlines == 0 && static.MakespanUS <= tol
	fmt.Printf("  static:   %.1f µJ, makespan %.1f µs, met=%v (slack %.1f µs)\n",
		static.EnergyUJ, static.MakespanUS, staticOK, gw.DeadlineUS-static.MakespanUS)

	governedOK := true
	if !res.Degenerate {
		governed, _, _, err := cfg.ReclaimGraph(gw, res.Schedule)
		if err != nil {
			app.Die(err)
		}
		grun, err := cfg.SimulateGraph(gw, governed)
		if err != nil {
			app.Die(err)
		}
		governedOK = grun.MissedDeadlines == 0 && grun.MakespanUS <= tol
		fmt.Printf("  governed: %.1f µJ, makespan %.1f µs, met=%v\n",
			grun.EnergyUJ, grun.MakespanUS, governedOK)
	}
	if !staticOK || !governedOK {
		return 2
	}
	return 0
}
