// Command dvs-load drives a running dvs-serve with concurrent optimization
// requests and reports throughput and latency percentiles. It is the
// client-side half of the serving benchmarks: point it at a cold server to
// watch solves happen, run it again to watch the artifact cache absorb the
// same traffic.
//
// Usage:
//
//	dvs-load -addr http://localhost:8080 -bench gsm/encode -n 64 -c 8
//	dvs-load -addr http://localhost:8080 -bench mpeg/decode -n 50 -c 10 -spread
//
// With -spread, requests cycle through the five paper deadlines so the
// server sees five distinct problems instead of one coalescable key.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type request struct {
	Bench       string  `json:"bench"`
	Input       int     `json:"input"`
	Levels      int     `json:"levels,omitempty"`
	Deadline    int     `json:"deadline,omitempty"`
	DeadlineUS  float64 `json:"deadline_us,omitempty"`
	Capacitance float64 `json:"capacitance_f,omitempty"`
	SkipMeasure bool    `json:"skip_measure,omitempty"`
	TimeoutMS   int64   `json:"timeout_ms,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "server base URL")
	bench := flag.String("bench", "adpcm/encode", "benchmark name")
	input := flag.Int("input", 0, "input index")
	levels := flag.Int("levels", 3, "voltage levels (3, 7 or 13)")
	deadline := flag.Int("deadline", 3, "paper deadline number (1..5)")
	spread := flag.Bool("spread", false, "cycle requests through deadlines 1..5 (distinct problems, no coalescing)")
	n := flag.Int("n", 32, "total requests")
	c := flag.Int("c", 8, "concurrent clients")
	skipMeasure := flag.Bool("skip-measure", false, "ask the server to skip the validation simulation")
	timeoutMS := flag.Int64("timeout-ms", 0, "per-request timeout_ms field (0 = server default)")
	flag.Parse()

	bodies := make([][]byte, *n)
	for i := range bodies {
		req := request{
			Bench: *bench, Input: *input, Levels: *levels,
			Deadline: *deadline, SkipMeasure: *skipMeasure, TimeoutMS: *timeoutMS,
		}
		if *spread {
			req.Deadline = 1 + i%5
		}
		b, err := json.Marshal(req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvs-load: %v\n", err)
			os.Exit(1)
		}
		bodies[i] = b
	}

	var (
		next      atomic.Int64
		mu        sync.Mutex
		latencies []float64
		status    = make(map[int]int)
		errs      int
		firstErr  error
	)
	client := &http.Client{}
	url := *addr + "/optimize"

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bodies) {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i]))
				ms := float64(time.Since(t0).Microseconds()) / 1e3
				mu.Lock()
				if err != nil {
					errs++
					if firstErr == nil {
						firstErr = err
					}
				} else {
					status[resp.StatusCode]++
					latencies = append(latencies, ms)
				}
				mu.Unlock()
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if errs > 0 {
		fmt.Fprintf(os.Stderr, "dvs-load: %d transport errors (first: %v)\n", errs, firstErr)
	}
	codes := make([]int, 0, len(status))
	for code := range status {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Printf("HTTP %d: %d\n", code, status[code])
	}
	if len(latencies) == 0 {
		os.Exit(1)
	}
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		i := int(p*float64(len(latencies))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	fmt.Printf("%d requests in %v: %.1f req/s\n",
		len(latencies), elapsed.Round(time.Millisecond),
		float64(len(latencies))/elapsed.Seconds())
	fmt.Printf("latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		pct(0.50), pct(0.90), pct(0.99), latencies[len(latencies)-1])
}
