// Command dvs-opt runs the MILP DVS optimizer on one benchmark and reports
// the chosen schedule, solver statistics, and the measured outcome against
// the best single-frequency baseline. With -cache-dir, the profile, the
// solve and the validation runs are content-addressed artifacts: repeating
// an invocation (or re-measuring a schedule dvs-bench already produced)
// touches neither the simulator nor the solver.
//
// Usage:
//
//	dvs-opt -bench gsm/encode -deadline 3          # paper deadline number 1-5
//	dvs-opt -bench gsm/encode -deadline-us 90000   # explicit deadline in µs
//	dvs-opt -bench mpeg/decode -levels 7 -cap 1e-6 -no-filter
//	dvs-opt -bench epic -cache-dir .dvs-cache -manifest run.json
//
// Task-graph mode optimizes a DAG of benchmark tasks across cores — per-core
// placement plus per-task voltage modes — and reports the static schedule and
// the slack-reclaiming governed execution:
//
//	dvs-opt -task-graph fork-join-2w               # corpus graph by name
//	dvs-opt -task-graph mpi-mix -cores 4           # override the core count
//	dvs-opt -graph-file graph.json                 # spec file (see dvs-sim -graph)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ctdvs/cmd/internal/cli"
	"ctdvs/internal/core"
	"ctdvs/internal/exp"
	"ctdvs/internal/milp"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/volt"
	"ctdvs/internal/workloads"
)

func main() {
	app := cli.New("dvs-opt")
	app.ScaleFlag()
	app.SolveFlags()
	bench := flag.String("bench", "adpcm/encode", "benchmark name")
	input := flag.Int("input", 0, "input index")
	levels := flag.Int("levels", 3, "voltage levels (3, 7 or 13)")
	deadlineNum := flag.Int("deadline", 3, "paper deadline number (1=tight .. 5=lax)")
	deadlineUS := flag.Float64("deadline-us", 0, "explicit deadline in µs (overrides -deadline)")
	capF := flag.Float64("cap", 10e-6, "regulator capacitance (farads)")
	noFilter := flag.Bool("no-filter", false, "disable 2% edge filtering")
	noTrans := flag.Bool("no-transition-costs", false, "Saputra-style: ignore switching costs in the MILP")
	blockBased := flag.Bool("block-based", false, "block-granularity mode variables")
	showSchedule := flag.Bool("schedule", false, "print the per-edge mode assignment")
	showPlacement := flag.Bool("placement", false, "classify mode-set instructions (required/silent/hoistable)")
	savePath := flag.String("save", "", "write the schedule to this file (dvs-sim executes it)")
	graphName := flag.String("task-graph", "", "optimize a corpus task graph by name instead of a single benchmark")
	graphFile := flag.String("graph-file", "", "optimize a task-graph spec file instead of a single benchmark")
	cores := flag.Int("cores", 0, "override the task graph's core count (0 = the graph's own)")
	saveGraph := flag.String("save-graph", "", "write the resolved task-graph spec to this file (dvs-sim -graph executes it)")
	app.Parse()

	cfg := app.Config()
	if *graphName != "" || *graphFile != "" {
		runGraph(app, cfg, *graphName, *graphFile, *cores, *levels, *deadlineUS, *capF, *noTrans, *saveGraph)
		app.Close()
		return
	}
	spec, err := cfg.Spec(*bench)
	if err != nil {
		app.Die(err)
	}
	pr, err := cfg.Profile(*bench, *input, *levels)
	if err != nil {
		app.Die(err)
	}

	dl := *deadlineUS
	if dl == 0 {
		if *deadlineNum < 1 || *deadlineNum > 5 {
			app.Dief("deadline number must be 1..5")
		}
		n := pr.Modes.Len()
		dl = spec.Deadline(*deadlineNum, pr.TotalTimeUS[n-1], pr.TotalTimeUS[0])
	}

	reg := volt.DefaultRegulator().WithCapacitance(*capF)
	opts := &core.Options{
		Regulator:         reg,
		NoTransitionCosts: *noTrans,
		BlockBased:        *blockBased,
		MILP:              &milp.Options{TimeLimit: app.SolveLimit, Workers: app.Workers},
	}
	if *noFilter {
		opts.FilterTail = -1
	}

	res, err := cfg.OptimizeSingle(pr, dl, opts)
	if err != nil {
		app.Die(err)
	}

	fmt.Printf("%s input %q: deadline %.1f µs, %d voltage levels, c=%.2g F\n",
		spec.Name, spec.Inputs[*input].Name, dl, *levels, *capF)
	fmt.Printf("MILP: %d/%d independent edges, %d nodes (%d pruned analytically), %d LP solves, %v (%v)\n",
		res.IndependentEdges, res.TotalEdges,
		res.Solver.Nodes, res.Solver.AnalyticPrunes,
		res.Solver.LPIters, res.Solver.SolveTime.Round(time.Millisecond),
		res.Solver.Status)
	fmt.Printf("LP:   %d warm / %d cold / %d fallback solves (%.0f%% warm), %d pivots (%.1f/node), %v in simplex\n",
		res.Solver.WarmSolves, res.Solver.ColdSolves, res.Solver.WarmFallbacks,
		100*res.Solver.WarmHitRate(), res.Solver.LPPivots, res.Solver.PivotsPerNode(),
		res.Solver.LPTime.Round(time.Millisecond))
	fmt.Printf("predicted: energy %.1f µJ, time %.1f µs\n",
		res.PredictedEnergyUJ, res.PredictedTimeUS[0])

	ev, err := cfg.Measure(pr, res.Schedule, dl)
	if err != nil {
		app.Die(err)
	}
	fmt.Printf("measured:  energy %.1f µJ, time %.1f µs, %d transitions "+
		"(%.2f µJ / %.2f µs in switches), meets deadline: %v\n",
		ev.Run.EnergyUJ, ev.Run.TimeUS, ev.Run.Transitions,
		ev.Run.TransitionEnergyUJ, ev.Run.TransitionTimeUS, ev.MeetsDeadline)

	mode, baseE, ok := pr.BestSingleMode(dl)
	if ok {
		s, err := cfg.Savings(pr, res.Schedule, dl, reg)
		if err != nil {
			app.Die(err)
		}
		fmt.Printf("baseline:  best single mode %v, energy %.1f µJ → savings %.4f\n",
			pr.Modes.Mode(mode), baseE, s)
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			app.Die(err)
		}
		if err := schedfile.Save(f, spec.Name, res.Schedule); err != nil {
			f.Close()
			app.Die(err)
		}
		if err := f.Close(); err != nil {
			app.Die(err)
		}
		fmt.Printf("schedule written to %s\n", *savePath)
	}

	if *showPlacement {
		pl := core.PlaceModeSets(pr, res.Schedule)
		fmt.Printf("placement: %d mode-set instructions required, %d silent (removable), %d hoistable\n",
			len(pl.Required), len(pl.Silent), len(pl.Hoistable))
		for _, e := range pl.Required {
			fmt.Printf("  required: %v → %v\n", e, pr.Modes.Mode(res.Schedule.Assignment[e]))
		}
	}

	if *showSchedule {
		st := &exp.Table{
			Title:   "\nschedule (mode-set per control-flow edge)",
			Headers: []string{"edge", "destination", "mode", "traversals"},
		}
		g := pr.Graph
		for ei, e := range g.Edges {
			mi := res.Schedule.Assignment[e]
			st.Rows = append(st.Rows, []string{
				e.String(), spec.Program.Blocks[e.To].Name, pr.Modes.Mode(mi).String(),
				fmt.Sprintf("%d", pr.EdgeCounts[ei]),
			})
		}
		if err := st.Render(os.Stdout); err != nil {
			app.Die(err)
		}
	}
	app.Close()
}

// runGraph is the task-graph path: resolve the spec (corpus name or file),
// solve the per-core placement and mode assignment, execute the static
// schedule, then run the slack-reclaiming governor over it.
func runGraph(app *cli.App, cfg *exp.Config, name, file string, cores, levels int,
	deadlineUS, capF float64, noTrans bool, saveGraph string) {
	if name != "" && file != "" {
		app.Dief("-task-graph and -graph-file are mutually exclusive")
	}
	var gs *workloads.GraphSpec
	dl := deadlineUS
	if name != "" {
		var ok bool
		if gs, ok = workloads.Graph(name); !ok {
			known := ""
			for _, g := range workloads.Graphs() {
				known += " " + g.Name
			}
			app.Dief("unknown task graph %q (have:%s)", name, known)
		}
	} else {
		f, err := os.Open(file)
		if err != nil {
			app.Die(err)
		}
		gf, err := schedfile.LoadGraphSpec(f)
		f.Close()
		if err != nil {
			app.Die(err)
		}
		if gs, err = gf.Spec(); err != nil {
			app.Die(err)
		}
		if dl == 0 {
			dl = gf.DeadlineUS
		}
	}
	if cores > 0 {
		override := *gs
		override.Cores = cores
		gs = &override
	}

	gw, err := cfg.BuildGraph(gs, levels, dl)
	if err != nil {
		app.Die(err)
	}
	opts := &core.Options{
		Regulator:         volt.DefaultRegulator().WithCapacitance(capF),
		NoTransitionCosts: noTrans,
		MILP:              &milp.Options{TimeLimit: app.SolveLimit, Workers: app.Workers},
	}
	res, err := cfg.OptimizeGraph(gw, opts)
	if err != nil {
		app.Die(err)
	}

	fmt.Printf("%s: %d tasks on %d cores, deadline %.1f µs (span %.1f..%.1f), %d voltage levels\n",
		gs.Name, len(gw.Graph.Tasks), gw.Cores, gw.DeadlineUS, gw.FastUS, gw.SlowUS, levels)
	fmt.Printf("MILP: %d nodes (%d pruned analytically), %d LP solves, %v (%v)\n",
		res.Solver.Nodes, res.Solver.AnalyticPrunes,
		res.Solver.LPIters, res.Solver.SolveTime.Round(time.Millisecond),
		res.Solver.Status)
	fmt.Printf("predicted: energy %.1f µJ, makespan %.1f µs\n",
		res.PredictedEnergyUJ, res.PredictedMakespanUS)

	static, err := cfg.SimulateGraph(gw, res.Schedule)
	if err != nil {
		app.Die(err)
	}
	st := &exp.Table{
		Title:   "\nplacement (static schedule)",
		Headers: []string{"task", "core", "mode", "start (µs)", "finish (µs)", "energy (µJ)"},
	}
	for _, run := range static.Runs {
		st.Rows = append(st.Rows, []string{
			run.Name,
			fmt.Sprintf("%d", run.Core),
			res.Schedule.Modes.Mode(run.Mode).String(),
			fmt.Sprintf("%.1f", run.StartUS),
			fmt.Sprintf("%.1f", run.FinishUS),
			fmt.Sprintf("%.1f", run.EnergyUJ),
		})
	}
	if err := st.Render(os.Stdout); err != nil {
		app.Die(err)
	}
	fmt.Printf("\nstatic:   energy %.1f µJ, makespan %.1f µs, %d transitions, meets deadline: %v\n",
		static.EnergyUJ, static.MakespanUS, static.Transitions,
		static.MissedDeadlines == 0 && static.MakespanUS <= gw.DeadlineUS*(1+1e-9))

	if !res.Degenerate {
		governed, _, _, err := cfg.ReclaimGraph(gw, res.Schedule)
		if err != nil {
			app.Die(err)
		}
		grun, err := cfg.SimulateGraph(gw, governed)
		if err != nil {
			app.Die(err)
		}
		saving := 0.0
		if static.EnergyUJ > 0 {
			saving = 1 - grun.EnergyUJ/static.EnergyUJ
		}
		fmt.Printf("governed: energy %.1f µJ, makespan %.1f µs, meets deadline: %v (reclaims %.2f%%)\n",
			grun.EnergyUJ, grun.MakespanUS,
			grun.MissedDeadlines == 0 && grun.MakespanUS <= gw.DeadlineUS*(1+1e-9),
			100*saving)
	}

	if saveGraph != "" {
		f, err := os.Create(saveGraph)
		if err != nil {
			app.Die(err)
		}
		if err := schedfile.SaveGraphSpec(f, gs, gw.DeadlineUS); err != nil {
			f.Close()
			app.Die(err)
		}
		if err := f.Close(); err != nil {
			app.Die(err)
		}
		fmt.Printf("graph spec written to %s\n", saveGraph)
	}
}
