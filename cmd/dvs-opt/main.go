// Command dvs-opt runs the MILP DVS optimizer on one benchmark and reports
// the chosen schedule, solver statistics, and the measured outcome against
// the best single-frequency baseline.
//
// Usage:
//
//	dvs-opt -bench gsm/encode -deadline 3          # paper deadline number 1-5
//	dvs-opt -bench gsm/encode -deadline-us 90000   # explicit deadline in µs
//	dvs-opt -bench mpeg/decode -levels 7 -cap 1e-6 -no-filter
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ctdvs/internal/core"
	"ctdvs/internal/exp"
	"ctdvs/internal/milp"
	"ctdvs/internal/profile"
	"ctdvs/internal/schedfile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
	"ctdvs/internal/workloads"
)

func main() {
	bench := flag.String("bench", "adpcm/encode", "benchmark name")
	input := flag.Int("input", 0, "input index")
	scale := flag.Float64("scale", 1.0, "workload scale")
	levels := flag.Int("levels", 3, "voltage levels (3, 7 or 13)")
	deadlineNum := flag.Int("deadline", 3, "paper deadline number (1=tight .. 5=lax)")
	deadlineUS := flag.Float64("deadline-us", 0, "explicit deadline in µs (overrides -deadline)")
	capF := flag.Float64("cap", 10e-6, "regulator capacitance (farads)")
	noFilter := flag.Bool("no-filter", false, "disable 2% edge filtering")
	noTrans := flag.Bool("no-transition-costs", false, "Saputra-style: ignore switching costs in the MILP")
	blockBased := flag.Bool("block-based", false, "block-granularity mode variables")
	solveLimit := flag.Duration("solve-limit", 2*time.Minute, "MILP time limit")
	workers := flag.Int("workers", 0, "branch-and-bound workers (0 = GOMAXPROCS, 1 = serial)")
	showSchedule := flag.Bool("schedule", false, "print the per-edge mode assignment")
	showPlacement := flag.Bool("placement", false, "classify mode-set instructions (required/silent/hoistable)")
	savePath := flag.String("save", "", "write the schedule to this file (dvs-sim executes it)")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "dvs-opt:", err)
		os.Exit(1)
	}

	var spec *workloads.Spec
	for _, s := range workloads.All(*scale) {
		if s.Name == *bench {
			spec = s
		}
	}
	if spec == nil {
		die(fmt.Errorf("unknown benchmark %q", *bench))
	}
	if *input < 0 || *input >= len(spec.Inputs) {
		die(fmt.Errorf("%s has inputs 0..%d", *bench, len(spec.Inputs)-1))
	}
	ms, err := volt.Levels(*levels)
	if err != nil {
		die(err)
	}

	m := sim.MustNew(sim.DefaultConfig())
	pr, err := profile.Collect(m, spec.Program, spec.Inputs[*input], ms)
	if err != nil {
		die(err)
	}

	dl := *deadlineUS
	if dl == 0 {
		if *deadlineNum < 1 || *deadlineNum > 5 {
			die(fmt.Errorf("deadline number must be 1..5"))
		}
		n := pr.Modes.Len()
		dl = spec.Deadline(*deadlineNum, pr.TotalTimeUS[n-1], pr.TotalTimeUS[0])
	}

	reg := volt.DefaultRegulator().WithCapacitance(*capF)
	opts := &core.Options{
		Regulator:         reg,
		NoTransitionCosts: *noTrans,
		BlockBased:        *blockBased,
		MILP:              &milp.Options{TimeLimit: *solveLimit, Workers: *workers},
	}
	if *noFilter {
		opts.FilterTail = -1
	}

	res, err := core.OptimizeSingle(pr, dl, opts)
	if err != nil {
		die(err)
	}

	fmt.Printf("%s input %q: deadline %.1f µs, %d voltage levels, c=%.2g F\n",
		spec.Name, spec.Inputs[*input].Name, dl, *levels, *capF)
	fmt.Printf("MILP: %d/%d independent edges, %d nodes, %d LP solves, %v (%v)\n",
		res.IndependentEdges, res.TotalEdges,
		res.Solver.Nodes, res.Solver.LPIters, res.Solver.SolveTime.Round(time.Millisecond),
		res.Solver.Status)
	fmt.Printf("predicted: energy %.1f µJ, time %.1f µs\n",
		res.PredictedEnergyUJ, res.PredictedTimeUS[0])

	ev, err := core.Evaluate(m, pr, res.Schedule, dl)
	if err != nil {
		die(err)
	}
	fmt.Printf("measured:  energy %.1f µJ, time %.1f µs, %d transitions "+
		"(%.2f µJ / %.2f µs in switches), meets deadline: %v\n",
		ev.Run.EnergyUJ, ev.Run.TimeUS, ev.Run.Transitions,
		ev.Run.TransitionEnergyUJ, ev.Run.TransitionTimeUS, ev.MeetsDeadline)

	mode, baseE, ok := pr.BestSingleMode(dl)
	if ok {
		s, err := core.SavingsVsBestSingle(m, pr, res.Schedule, dl, reg)
		if err != nil {
			die(err)
		}
		fmt.Printf("baseline:  best single mode %v, energy %.1f µJ → savings %.4f\n",
			pr.Modes.Mode(mode), baseE, s)
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			die(err)
		}
		if err := schedfile.Save(f, spec.Name, res.Schedule); err != nil {
			f.Close()
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		fmt.Printf("schedule written to %s\n", *savePath)
	}

	if *showPlacement {
		pl := core.PlaceModeSets(pr, res.Schedule)
		fmt.Printf("placement: %d mode-set instructions required, %d silent (removable), %d hoistable\n",
			len(pl.Required), len(pl.Silent), len(pl.Hoistable))
		for _, e := range pl.Required {
			fmt.Printf("  required: %v → %v\n", e, pr.Modes.Mode(res.Schedule.Assignment[e]))
		}
	}

	if *showSchedule {
		st := &exp.Table{
			Title:   "\nschedule (mode-set per control-flow edge)",
			Headers: []string{"edge", "destination", "mode", "traversals"},
		}
		g := pr.Graph
		for ei, e := range g.Edges {
			mi := res.Schedule.Assignment[e]
			st.Rows = append(st.Rows, []string{
				e.String(), spec.Program.Blocks[e.To].Name, pr.Modes.Mode(mi).String(),
				fmt.Sprintf("%d", pr.EdgeCounts[ei]),
			})
		}
		if err := st.Render(os.Stdout); err != nil {
			die(err)
		}
	}
}
