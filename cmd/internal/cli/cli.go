// Package cli holds the flag and pipeline wiring shared by the dvs-*
// commands: every binary gets -cache-dir/-no-cache/-manifest, and the
// optimizing ones add -scale and the MILP budget flags. The point is that all
// five tools draw from one artifact store — a schedule solved by dvs-opt is a
// cache hit for dvs-bench, and a run validated by dvs-bench is a cache hit
// for dvs-sim.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ctdvs/internal/exp"
	"ctdvs/internal/pipeline"
	"ctdvs/internal/sim"
)

// App carries the shared command state: parsed common flags and the pipeline
// runner they imply.
type App struct {
	// Name prefixes error messages ("dvs-opt: ...").
	Name string

	// Scale is the workload scale factor; registered by ScaleFlag, 1.0
	// otherwise.
	Scale float64
	// CacheDir, CacheCodec, NoCache and Manifest are the cache flags every
	// command registers.
	CacheDir   string
	CacheCodec string
	NoCache    bool
	Manifest   string

	// CacheMmap enables zero-copy mmap reads of binary artifacts (on by
	// default where the platform supports it); CacheWriteBatch coalesces
	// artifact writes into per-shard directory-sync batches, flushed at
	// Close. Both are escape hatches more than tunables.
	CacheMmap       bool
	CacheWriteBatch bool

	// PerModeProfile disables the record-once/replay-per-mode profiling path
	// and simulates every mode of every profile instead. The numbers are
	// bit-identical either way; the flag exists for cross-checking and for
	// memory-constrained runs.
	PerModeProfile bool

	// ReferenceSim runs simulations on the original instruction-walking
	// interpreter instead of the compiled-table kernel. Bit-identical either
	// way (and cache-compatible: artifact keys ignore the setting); the flag
	// is the cross-checking escape hatch mirroring -per-mode-profile.
	ReferenceSim bool

	// SolveLimit and Workers are registered by SolveFlags.
	SolveLimit time.Duration
	Workers    int

	// CPUProfile and MemProfile are the pprof output paths every command
	// registers; empty disables the profile.
	CPUProfile string
	MemProfile string

	runner  *pipeline.Runner
	cpuProf *os.File
}

// New returns an App and registers the cache flags. Call the optional
// ScaleFlag/SolveFlags next, then Parse.
func New(name string) *App {
	a := &App{Name: name, Scale: 1.0}
	flag.StringVar(&a.CacheDir, "cache-dir", "",
		"artifact cache directory: repeated runs with the same configuration skip profiling and MILP solves (empty = in-memory only)")
	flag.StringVar(&a.CacheCodec, "cache-codec", "binary",
		"encoding for newly written artifacts, binary or json; either store reads both, so switching never invalidates a cache")
	flag.BoolVar(&a.NoCache, "no-cache", false,
		"ignore -cache-dir and recompute everything (artifacts stay in memory for this run)")
	flag.StringVar(&a.Manifest, "manifest", "",
		"write a JSON run manifest (per-stage cache hits, misses and timings) to this file")
	flag.BoolVar(&a.CacheMmap, "cache-mmap", true,
		"read binary artifacts zero-copy through mmap where the platform supports it (decoded values are identical either way)")
	flag.BoolVar(&a.CacheWriteBatch, "cache-write-batch", true,
		"coalesce artifact writes into per-shard batches with one directory sync each (still crash-safe; flushed at exit)")
	flag.BoolVar(&a.PerModeProfile, "per-mode-profile", false,
		"simulate every mode when profiling instead of recording one event stream and replaying it (bit-identical, slower)")
	flag.BoolVar(&a.ReferenceSim, "reference-sim", false,
		"simulate with the reference instruction-walking interpreter instead of the compiled-table kernel (bit-identical, slower)")
	flag.StringVar(&a.CPUProfile, "cpuprofile", "",
		"write a pprof CPU profile of the whole run to this file")
	flag.StringVar(&a.MemProfile, "memprofile", "",
		"write a pprof heap profile (taken at exit) to this file")
	return a
}

// ScaleFlag registers -scale.
func (a *App) ScaleFlag() {
	flag.Float64Var(&a.Scale, "scale", 1.0, "workload scale factor (1.0 = paper-comparable)")
}

// SolveFlags registers the MILP budget flags.
func (a *App) SolveFlags() {
	flag.DurationVar(&a.SolveLimit, "solve-limit", 2*time.Minute, "time limit per MILP solve")
	flag.IntVar(&a.Workers, "workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
}

// Parse parses the command line and starts CPU profiling if -cpuprofile was
// given; the profile runs until Close.
func (a *App) Parse() {
	flag.Parse()
	if a.CPUProfile != "" {
		f, err := os.Create(a.CPUProfile)
		if err != nil {
			a.Die(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			a.Die(err)
		}
		a.cpuProf = f
	}
}

// Runner returns the pipeline runner implied by the cache flags: disk-backed
// when -cache-dir is set and -no-cache is not, memory-only otherwise.
func (a *App) Runner() *pipeline.Runner {
	if a.runner == nil {
		var store *pipeline.Store
		if a.CacheDir != "" && !a.NoCache {
			format, err := pipeline.ParseFormat(a.CacheCodec)
			if err != nil {
				a.Die(err)
			}
			s, err := pipeline.OpenWithFormat(a.CacheDir, format)
			if err != nil {
				a.Die(err)
			}
			s.SetMappedReads(a.CacheMmap)
			if a.CacheWriteBatch {
				s.EnableWriteBatching(pipeline.BatchConfig{})
			}
			store = s
		}
		a.runner = pipeline.NewRunner(store)
	}
	return a.runner
}

// Config returns an experiment configuration at the app's scale, wired to the
// app's pipeline runner. Solver budget and fan-out remain per-command.
func (a *App) Config() *exp.Config {
	c := exp.NewConfig(a.Scale)
	c.Pipeline = a.Runner()
	c.DisableRecording = a.PerModeProfile
	if a.ReferenceSim {
		mc := c.Machine.Config()
		mc.ReferenceSim = true
		// The machine pool builds from c.Machine's configuration at Get
		// time, so swapping the prototype here covers pooled machines too.
		c.Machine = sim.MustNew(mc)
	}
	return c
}

// Close finishes the run's bookkeeping: it flushes batched store writes and
// the store's access-time index, stops the CPU profile, writes the heap
// profile, and writes the run manifest, each only if the corresponding flag
// was given. Call it once, after the command's work is done.
func (a *App) Close() {
	if a.runner != nil {
		if store := a.runner.Store(); store != nil {
			if err := store.Close(); err != nil {
				a.Die(err)
			}
		}
	}
	if a.cpuProf != nil {
		pprof.StopCPUProfile()
		if err := a.cpuProf.Close(); err != nil {
			a.Die(err)
		}
		a.cpuProf = nil
	}
	if a.MemProfile != "" {
		f, err := os.Create(a.MemProfile)
		if err != nil {
			a.Die(err)
		}
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			a.Die(err)
		}
		if err := f.Close(); err != nil {
			a.Die(err)
		}
	}
	if a.Manifest == "" {
		return
	}
	if err := a.Runner().Manifest().WriteFile(a.Manifest); err != nil {
		a.Die(err)
	}
}

// Die prints the error with the command prefix and exits nonzero.
func (a *App) Die(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", a.Name, err)
	os.Exit(1)
}

// Dief is Die with Printf formatting.
func (a *App) Dief(format string, args ...interface{}) {
	a.Die(fmt.Errorf(format, args...))
}
