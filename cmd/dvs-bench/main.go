// Command dvs-bench regenerates the paper's evaluation: every table and
// figure plus this reproduction's ablations, printed as text tables.
//
// Usage:
//
//	dvs-bench [-scale 1.0] [-exp all|table1,table6,fig15,...] [-grid 16] [-workers N]
//	dvs-bench -cache-dir .dvs-cache -manifest run.json   # warm rerun: no sim, no MILP
//
// Run with -list for the experiment catalogue: the paper's tables 1/3/4/5/
// 6/7 and figures 2-11/14/15/17/18/19, this reproduction's extensions
// (placement, runtime, ablation-transition, ablation-block,
// ablation-heuristic, ablation-pathfilter, ablation-leakage), and the
// opt-in "scaling" sweep (excluded from "all"; several minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ctdvs/cmd/internal/cli"
	"ctdvs/internal/exp"
	"ctdvs/internal/milp"
)

func main() {
	app := cli.New("dvs-bench")
	app.ScaleFlag()
	app.SolveFlags()
	expList := flag.String("exp", "all", "comma-separated experiment list, or 'all'")
	gridN := flag.Int("grid", 16, "surface grid resolution for figures 5-11")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	list := flag.Bool("list", false, "list available experiments and exit")
	app.Parse()

	if *list {
		fmt.Println("paper:      table1 table3 table4 table5 table6 table7")
		fmt.Println("            fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11")
		fmt.Println("            fig14 fig15 fig17 fig18 fig19")
		fmt.Println("extensions: placement runtime ablation-transition ablation-block")
		fmt.Println("            ablation-heuristic ablation-pathfilter ablation-leakage")
		fmt.Println("opt-in:     scaling (excluded from 'all'; several minutes)")
		return
	}

	cfg := app.Config()
	cfg.MILP = &milp.Options{TimeLimit: app.SolveLimit}
	cfg.Workers = app.Workers

	selected := map[string]bool{}
	all := *expList == "all"
	for _, name := range strings.Split(*expList, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	want := func(name string) bool { return all || selected[name] }

	out := os.Stdout
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "dvs-bench: %s: %v\n", name, err)
		os.Exit(1)
	}
	show := func(t *exp.Table) {
		if *asJSON {
			if err := t.JSON(out); err != nil {
				fail(t.Title, err)
			}
			return
		}
		if err := t.Render(out); err != nil {
			fail(t.Title, err)
		}
		fmt.Fprintln(out)
	}

	if want("fig2") {
		show(exp.Figure2().Table())
	}
	if want("fig3") {
		show(exp.Figure3().Table())
	}
	if want("fig4") {
		show(exp.Figure4().Table())
	}
	if want("fig5") {
		show(exp.Figure5(*gridN).Table())
	}
	if want("fig6") {
		show(exp.Figure6(*gridN).Table())
	}
	if want("fig7") {
		show(exp.Figure7(*gridN).Table())
	}
	if want("fig8") {
		c, err := exp.Figure8(60)
		if err != nil {
			fail("fig8", err)
		}
		show(c.Table())
	}
	if want("fig9") {
		s, err := exp.Figure9(*gridN)
		if err != nil {
			fail("fig9", err)
		}
		show(s.Table())
	}
	if want("fig10") {
		s, err := exp.Figure10(*gridN)
		if err != nil {
			fail("fig10", err)
		}
		show(s.Table())
	}
	if want("fig11") {
		s, err := exp.Figure11(*gridN)
		if err != nil {
			fail("fig11", err)
		}
		show(s.Table())
	}
	if want("table1") {
		rows, err := exp.Table1(cfg)
		if err != nil {
			fail("table1", err)
		}
		show(exp.RenderTable1(rows))
	}
	if want("table4") {
		rows, err := exp.Table4(cfg)
		if err != nil {
			fail("table4", err)
		}
		show(exp.RenderTable4(rows))
	}
	if want("table7") {
		rows, err := exp.Table7(cfg)
		if err != nil {
			fail("table7", err)
		}
		show(exp.RenderTable7(rows))
	}
	if want("table3") || want("fig14") {
		rows, err := exp.Table3Figure14(cfg)
		if err != nil {
			fail("table3/fig14", err)
		}
		show(exp.RenderTable3Figure14(rows))
	}
	if want("fig15") {
		rows, err := exp.Figure15(cfg)
		if err != nil {
			fail("fig15", err)
		}
		show(exp.RenderFigure15(rows))
	}
	if want("fig17") || want("fig18") || want("table5") {
		rows, err := exp.DeadlineSweep(cfg)
		if err != nil {
			fail("deadline sweep", err)
		}
		if want("fig17") {
			show(exp.RenderFigure17(rows))
		}
		if want("fig18") {
			show(exp.RenderFigure18(rows))
		}
		if want("table5") {
			show(exp.RenderTable5(rows))
		}
	}
	if want("table6") {
		rows, err := exp.Table6(cfg)
		if err != nil {
			fail("table6", err)
		}
		show(exp.RenderTable6(rows))
	}
	if want("fig19") {
		rows, err := exp.Figure19(cfg)
		if err != nil {
			fail("fig19", err)
		}
		show(exp.RenderFigure19(rows))
	}
	if want("ablation-transition") {
		rows, err := exp.AblationNoTransitionCost(cfg)
		if err != nil {
			fail("ablation-transition", err)
		}
		show(exp.RenderAblation("Ablation: transition-cost-aware vs Saputra-style blind MILP (c = 100 µF)", rows))
	}
	if want("ablation-block") {
		rows, err := exp.AblationBlockBased(cfg)
		if err != nil {
			fail("ablation-block", err)
		}
		show(exp.RenderAblation("Ablation: edge-based vs block-based mode variables", rows))
	}
	if selected["scaling"] { // opt-in: several minutes of MILP solves
		rows, err := exp.SolverScaling(cfg, 4, 40, []int{2, 4, 6, 8}, app.SolveLimit)
		if err != nil {
			fail("scaling", err)
		}
		show(exp.RenderSolverScaling(rows))
	}
	if want("ablation-heuristic") {
		rows, err := exp.AblationHeuristic(cfg)
		if err != nil {
			fail("ablation-heuristic", err)
		}
		show(exp.RenderAblation("Ablation: MILP vs memory-bound-region heuristic", rows))
	}
	if want("runtime") {
		rows, err := exp.RuntimeVsCompileTime(cfg)
		if err != nil {
			fail("runtime", err)
		}
		show(exp.RenderRuntime(rows))
	}
	if want("placement") {
		rows, err := exp.PlacementStats(cfg)
		if err != nil {
			fail("placement", err)
		}
		show(exp.RenderPlacement(rows))
	}
	if want("ablation-pathfilter") {
		rows, err := exp.AblationPathFilter(cfg, 0.98)
		if err != nil {
			fail("ablation-pathfilter", err)
		}
		show(exp.RenderPathFilter(rows))
	}
	if want("ablation-leakage") {
		rows, err := exp.AblationLeakage(cfg, exp.DefaultLeakageSweep())
		if err != nil {
			fail("ablation-leakage", err)
		}
		show(exp.RenderLeakage(rows))
	}
	app.Close()
}
