// Command dvs-prof profiles one benchmark of the synthetic MediaBench suite
// and prints its Table 7 parameters, fixed-mode runtimes/energies, deadline
// positions, and per-block profile.
//
// Usage:
//
//	dvs-prof -bench mpeg/decode [-input 0] [-scale 1.0] [-levels 3] [-blocks]
package main

import (
	"flag"
	"fmt"
	"os"

	"ctdvs/internal/cfg"
	"ctdvs/internal/exp"
	"ctdvs/internal/paths"
	"ctdvs/internal/profile"
	"ctdvs/internal/sim"
	"ctdvs/internal/volt"
	"ctdvs/internal/workloads"
)

func main() {
	bench := flag.String("bench", "adpcm/encode", "benchmark name")
	input := flag.Int("input", 0, "input index (mpeg/decode has 4)")
	scale := flag.Float64("scale", 1.0, "workload scale")
	levels := flag.Int("levels", 3, "voltage levels (3, 7 or 13)")
	blocks := flag.Bool("blocks", false, "print the per-block profile")
	hotPaths := flag.Int("hot-paths", 0, "print the N hottest Ball-Larus acyclic paths")
	flag.Parse()

	var spec *workloads.Spec
	for _, s := range workloads.All(*scale) {
		if s.Name == *bench {
			spec = s
		}
	}
	if spec == nil {
		fmt.Fprintf(os.Stderr, "dvs-prof: unknown benchmark %q; available:\n", *bench)
		for _, s := range workloads.All(*scale) {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(1)
	}
	if *input < 0 || *input >= len(spec.Inputs) {
		fmt.Fprintf(os.Stderr, "dvs-prof: %s has inputs 0..%d\n", *bench, len(spec.Inputs)-1)
		os.Exit(1)
	}
	ms, err := volt.Levels(*levels)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvs-prof:", err)
		os.Exit(1)
	}

	m := sim.MustNew(sim.DefaultConfig())

	var tracer *paths.Tracer
	var numbering *paths.Numbering
	if *hotPaths > 0 {
		g, err := cfg.FromProgram(spec.Program)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dvs-prof:", err)
			os.Exit(1)
		}
		numbering, err = paths.New(g)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dvs-prof:", err)
			os.Exit(1)
		}
		tracer = numbering.NewTracer()
		m.EdgeHook = tracer.Edge
	}

	pr, err := profile.Collect(m, spec.Program, spec.Inputs[*input], ms)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvs-prof:", err)
		os.Exit(1)
	}
	m.EdgeHook = nil

	fmt.Printf("%s, input %q, scale %g\n", spec.Name, spec.Inputs[*input].Name, *scale)
	fmt.Printf("parameters: %s\n\n", sim.FormatParams(pr.Params))

	runs := &exp.Table{
		Title:   "fixed-mode runs",
		Headers: []string{"mode", "time (ms)", "energy (µJ)"},
	}
	for i := 0; i < ms.Len(); i++ {
		runs.Rows = append(runs.Rows, []string{
			ms.Mode(i).String(),
			fmt.Sprintf("%.3f", pr.TotalTimeUS[i]/1e3),
			fmt.Sprintf("%.1f", pr.TotalEnergyUJ[i]),
		})
	}
	if err := runs.Render(os.Stdout); err != nil {
		os.Exit(1)
	}

	n := pr.Modes.Len()
	dls := spec.Deadlines(pr.TotalTimeUS[n-1], pr.TotalTimeUS[0])
	fmt.Printf("\ndeadlines (ms): D1=%.3f D2=%.3f D3=%.3f D4=%.3f D5=%.3f\n",
		dls[0]/1e3, dls[1]/1e3, dls[2]/1e3, dls[3]/1e3, dls[4]/1e3)
	fmt.Printf("graph: %d blocks, %d edges, %d local paths\n",
		pr.Graph.NumBlocks, pr.Graph.NumEdges(), len(pr.Graph.Paths))

	if tracer != nil {
		tracer.Finish()
		hot, err := paths.Hot(numbering, tracer.Counts(), *hotPaths)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dvs-prof:", err)
			os.Exit(1)
		}
		fmt.Printf("\nhot acyclic paths (Ball-Larus, over %d profiling runs):\n", ms.Len())
		for _, h := range hot {
			fmt.Printf("  ×%-10d", h.Count)
			for i, blk := range h.Blocks {
				if i > 0 {
					fmt.Print(" → ")
				}
				fmt.Print(spec.Program.Blocks[blk].Name)
			}
			fmt.Println()
		}
	}

	if *blocks {
		bt := &exp.Table{
			Title:   "\nper-block profile (per invocation, at the fastest mode)",
			Headers: []string{"block", "name", "invocations", "time (µs)", "energy (µJ)"},
		}
		for j := 0; j < pr.Graph.NumBlocks; j++ {
			bt.Rows = append(bt.Rows, []string{
				fmt.Sprintf("%d", j),
				spec.Program.Blocks[j].Name,
				fmt.Sprintf("%d", pr.Invocations[j]),
				fmt.Sprintf("%.4f", pr.TimeUS[j][n-1]),
				fmt.Sprintf("%.5f", pr.EnergyUJ[j][n-1]),
			})
		}
		if err := bt.Render(os.Stdout); err != nil {
			os.Exit(1)
		}
	}
}
