// Command dvs-prof profiles one benchmark of the synthetic MediaBench suite
// and prints its Table 7 parameters, fixed-mode runtimes/energies, deadline
// positions, and per-block profile. With -cache-dir, the profile itself is a
// content-addressed artifact shared with dvs-opt and dvs-bench: a benchmark
// profiled once is never simulated again.
//
// Usage:
//
//	dvs-prof -bench mpeg/decode [-input 0] [-scale 1.0] [-levels 3] [-blocks]
package main

import (
	"flag"
	"fmt"
	"os"

	"ctdvs/cmd/internal/cli"
	"ctdvs/internal/exp"
	"ctdvs/internal/paths"
	"ctdvs/internal/sim"
	"ctdvs/internal/workloads"
)

func main() {
	app := cli.New("dvs-prof")
	app.ScaleFlag()
	bench := flag.String("bench", "adpcm/encode", "benchmark name")
	input := flag.Int("input", 0, "input index (mpeg/decode has 4)")
	levels := flag.Int("levels", 3, "voltage levels (3, 7 or 13)")
	blocks := flag.Bool("blocks", false, "print the per-block profile")
	hotPaths := flag.Int("hot-paths", 0, "print the N hottest Ball-Larus acyclic paths")
	app.Parse()

	cfg := app.Config()
	spec, err := cfg.Spec(*bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvs-prof: unknown benchmark %q; available:\n", *bench)
		for _, s := range workloads.All(app.Scale) {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(1)
	}

	pr, err := cfg.Profile(*bench, *input, *levels)
	if err != nil {
		app.Die(err)
	}
	ms := pr.Modes

	fmt.Printf("%s, input %q, scale %g\n", spec.Name, spec.Inputs[*input].Name, app.Scale)
	fmt.Printf("parameters: %s\n\n", sim.FormatParams(pr.Params))

	runs := &exp.Table{
		Title:   "fixed-mode runs",
		Headers: []string{"mode", "time (ms)", "energy (µJ)"},
	}
	for i := 0; i < ms.Len(); i++ {
		runs.Rows = append(runs.Rows, []string{
			ms.Mode(i).String(),
			fmt.Sprintf("%.3f", pr.TotalTimeUS[i]/1e3),
			fmt.Sprintf("%.1f", pr.TotalEnergyUJ[i]),
		})
	}
	if err := runs.Render(os.Stdout); err != nil {
		os.Exit(1)
	}

	n := pr.Modes.Len()
	dls := spec.Deadlines(pr.TotalTimeUS[n-1], pr.TotalTimeUS[0])
	fmt.Printf("\ndeadlines (ms): D1=%.3f D2=%.3f D3=%.3f D4=%.3f D5=%.3f\n",
		dls[0]/1e3, dls[1]/1e3, dls[2]/1e3, dls[3]/1e3, dls[4]/1e3)
	fmt.Printf("graph: %d blocks, %d edges, %d local paths\n",
		pr.Graph.NumBlocks, pr.Graph.NumEdges(), len(pr.Graph.Paths))

	if *hotPaths > 0 {
		// Path tracing needs an edge hook on a live run, so it is the one
		// part of this command the artifact cache cannot serve.
		numbering, err := paths.New(pr.Graph)
		if err != nil {
			app.Die(err)
		}
		tracer := numbering.NewTracer()
		cfg.Machine.EdgeHook = tracer.Edge
		_, err = cfg.Machine.Run(spec.Program, spec.Inputs[*input], ms.Max())
		cfg.Machine.EdgeHook = nil
		if err != nil {
			app.Die(err)
		}
		tracer.Finish()
		hot, err := paths.Hot(numbering, tracer.Counts(), *hotPaths)
		if err != nil {
			app.Die(err)
		}
		fmt.Printf("\nhot acyclic paths (Ball-Larus, one run at %v):\n", ms.Max())
		for _, h := range hot {
			fmt.Printf("  ×%-10d", h.Count)
			for i, blk := range h.Blocks {
				if i > 0 {
					fmt.Print(" → ")
				}
				fmt.Print(spec.Program.Blocks[blk].Name)
			}
			fmt.Println()
		}
	}

	if *blocks {
		bt := &exp.Table{
			Title:   "\nper-block profile (per invocation, at the fastest mode)",
			Headers: []string{"block", "name", "invocations", "time (µs)", "energy (µJ)"},
		}
		for j := 0; j < pr.Graph.NumBlocks; j++ {
			bt.Rows = append(bt.Rows, []string{
				fmt.Sprintf("%d", j),
				spec.Program.Blocks[j].Name,
				fmt.Sprintf("%d", pr.Invocations[j]),
				fmt.Sprintf("%.4f", pr.TimeUS[j][n-1]),
				fmt.Sprintf("%.5f", pr.EnergyUJ[j][n-1]),
			})
		}
		if err := bt.Render(os.Stdout); err != nil {
			os.Exit(1)
		}
	}
	app.Close()
}
